#include "mc/invariants.hpp"

#include <cmath>

namespace vgrid::mc {
namespace {

std::string wu_tag(std::uint64_t workunit_id) {
  return "wu " + std::to_string(workunit_id);
}

}  // namespace

void InvariantChecker::on_transition(TransitionPoint point,
                                     std::uint64_t workunit_id,
                                     const std::string& client_id,
                                     double detail) {
  switch (point) {
    case TransitionPoint::kCreditGranted: {
      total_granted_ += detail;
      ++wu_grants_[workunit_id];
      int& count = grants_[{workunit_id, client_id}];
      ++count;
      if (count > 1 && !pending_) {
        pending_ = Violation{
            "at-most-once-credit",
            wu_tag(workunit_id) + " granted credit to client " + client_id +
                " " + std::to_string(count) + " times"};
      }
      if (quorum_count_[workunit_id] == 0 && !pending_) {
        pending_ = Violation{
            "credit-before-quorum",
            wu_tag(workunit_id) + " granted credit to client " + client_id +
                " before any quorum was announced"};
      }
      break;
    }
    case TransitionPoint::kQuorumReached: {
      int& count = quorum_count_[workunit_id];
      ++count;
      if (count > 1 && !pending_) {
        pending_ = Violation{
            "quorum-at-most-once",
            wu_tag(workunit_id) + " announced quorum " +
                std::to_string(count) + " times"};
      }
      break;
    }
    case TransitionPoint::kStateChanged: {
      // detail carries the numeric WorkunitState (see grid::advance_state).
      // Order: kUnsent(0) < kInProgress(1) < {kValidated(2), kInvalid(3)}
      // where 2 and 3 are both terminal.
      const auto next = static_cast<std::uint8_t>(detail);
      const auto it = last_state_.find(workunit_id);
      const std::uint8_t last = it != last_state_.end() ? it->second : 0;
      if ((last >= 2 || next <= last || next == 0) && !pending_) {
        pending_ = Violation{
            "monotone-state",
            wu_tag(workunit_id) + " announced state change " +
                std::to_string(static_cast<int>(last)) + " -> " +
                std::to_string(static_cast<int>(next))};
      }
      last_state_[workunit_id] = next;
      break;
    }
    default:
      break;  // other points carry no invariant bookkeeping
  }
}

std::optional<Violation> InvariantChecker::check(const GridModel& model) const {
  if (pending_) return pending_;
  const grid::ServerLogic& server = model.server();

  // credit-conservation: the ledger's total equals the announced grants.
  double ledger_total = 0.0;
  for (const auto& [client_id, account] : server.accounts()) {
    ledger_total += account.credit;
  }
  if (std::abs(ledger_total - total_granted_) > 1e-9) {
    return Violation{
        "credit-conservation",
        "account ledger holds " + std::to_string(ledger_total) +
            " credit but " + std::to_string(total_granted_) +
            " was announced as granted"};
  }

  // workunit-conservation: ids 1..W were added once and must all remain.
  const int expected = model.config().workunits;
  if (static_cast<int>(server.tracked().size()) != expected) {
    return Violation{
        "workunit-conservation",
        "server tracks " + std::to_string(server.tracked().size()) +
            " workunits, expected " + std::to_string(expected)};
  }
  for (int w = 1; w <= expected; ++w) {
    if (server.tracked().count(static_cast<grid::WorkunitId>(w)) == 0) {
      return Violation{"workunit-conservation",
                       wu_tag(static_cast<std::uint64_t>(w)) +
                           " vanished from the server's tracking map"};
    }
  }

  // credit-quorum-bound: validation credits exactly the matching results
  // present at the quorum instant — never more than quorum of them.
  for (const auto& [id, count] : wu_grants_) {
    if (count > model.config().quorum) {
      return Violation{
          "credit-quorum-bound",
          wu_tag(id) + " granted credit " + std::to_string(count) +
              " times, quorum is " +
              std::to_string(model.config().quorum)};
    }
  }

  const int instance_cap =
      model.config().replication + model.config().quorum;
  for (const auto& [id, tracked] : server.tracked()) {
    // monotone-state: the model's actual state must be exactly the last
    // announced one (all writes funnel through grid::advance_state).
    const auto it = last_state_.find(id);
    const std::uint8_t announced = it != last_state_.end() ? it->second : 0;
    if (static_cast<std::uint8_t>(tracked.state) != announced) {
      return Violation{
          "monotone-state",
          wu_tag(id) + " is in state " + grid::to_string(tracked.state) +
              " but the last announced state was " +
              std::to_string(static_cast<int>(announced))};
    }
    // instance-bound: at most one extra round beyond initial replication.
    if (tracked.instances_sent > instance_cap) {
      return Violation{
          "instance-bound",
          wu_tag(id) + " sent " + std::to_string(tracked.instances_sent) +
              " instances, cap is " + std::to_string(instance_cap)};
    }
  }
  return std::nullopt;
}

}  // namespace vgrid::mc
