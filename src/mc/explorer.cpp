#include "mc/explorer.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "mc/transition.hpp"

namespace vgrid::mc {
namespace {

Action decode(std::uint16_t encoded) {
  return Action{static_cast<int>(encoded / 4),
                static_cast<ActionKind>(encoded % 4)};
}

std::optional<ActionKind> parse_kind(const std::string& name) {
  if (name == "fetch") return ActionKind::kFetch;
  if (name == "compute") return ActionKind::kCompute;
  if (name == "submit") return ActionKind::kSubmit;
  if (name == "die") return ActionKind::kDie;
  return std::nullopt;
}

std::string onoff(bool value) { return value ? "on" : "off"; }
std::string yesno(bool value) { return value ? "yes" : "no"; }

std::string action_text(const Action& action) {
  return GridModel::client_id(action.client) + " " + to_string(action.kind);
}

/// One DFS node: a snapshot of the system plus its audit history, the
/// actions still to branch on, and the actions put to sleep here.
struct Frame {
  GridModel model;
  InvariantChecker checker;
  std::vector<Action> candidates;
  std::size_t next = 0;
  std::set<std::uint16_t> sleep;
  /// This state's explored-action record in the cache (nullptr when the
  /// cache is off). std::map nodes are stable, so the pointer survives
  /// later insertions.
  std::set<std::uint16_t>* record = nullptr;

  Frame(GridModel m, InvariantChecker c)
      : model(std::move(m)), checker(std::move(c)) {}
};

}  // namespace

ExploreResult Explorer::run() {
  ExploreResult result;
  // hash -> actions already explored from that canonical state.
  std::map<std::uint64_t, std::set<std::uint16_t>> cache;
  std::vector<Frame> stack;
  std::vector<Action> path;  // actions from the root to the top frame

  // Expand a snapshot into a frame; returns false (and counts the leaf)
  // when the node has nothing left to branch on or hits the depth bound.
  const auto push = [&](GridModel&& model, InvariantChecker&& checker,
                        std::set<std::uint16_t>&& sleep) -> bool {
    ++result.states_visited;
    const int depth = static_cast<int>(path.size());
    result.max_depth_reached = std::max(result.max_depth_reached, depth);

    std::set<std::uint16_t>* record = nullptr;
    if (config_.use_state_cache) {
      record = &cache[model.state_hash()];
    }
    const std::vector<Action> enabled = model.enabled();
    if (enabled.empty()) {
      ++result.terminal_states;
      ++result.interleavings;
      return false;
    }
    if (depth >= config_.max_depth) {
      result.depth_bound_hit = true;
      ++result.interleavings;
      return false;
    }
    std::vector<Action> candidates;
    for (const Action& action : enabled) {
      const std::uint16_t encoded = action.encode();
      if (config_.use_sleep_sets && sleep.count(encoded) != 0) {
        ++result.sleep_pruned;
        continue;
      }
      if (record != nullptr && record->count(encoded) != 0) {
        ++result.visited_pruned;
        continue;
      }
      candidates.push_back(action);
    }
    if (candidates.empty()) {
      ++result.interleavings;  // everything here was already covered
      return false;
    }
    Frame frame(std::move(model), std::move(checker));
    frame.candidates = std::move(candidates);
    frame.sleep = std::move(sleep);
    frame.record = record;
    stack.push_back(std::move(frame));
    return true;
  };

  {
    GridModel root(config_.model);
    InvariantChecker checker;
    if (auto violation = checker.check(root)) {
      result.violation = std::move(violation);
      return result;
    }
    push(std::move(root), std::move(checker), {});
  }

  while (!stack.empty()) {
    if (result.states_visited >= config_.max_states) {
      result.state_bound_hit = true;
      break;
    }
    Frame& frame = stack.back();
    if (frame.next >= frame.candidates.size()) {
      stack.pop_back();
      path.resize(stack.empty() ? 0 : stack.size() - 1);
      continue;
    }
    const Action action = frame.candidates[frame.next++];
    if (frame.record != nullptr) frame.record->insert(action.encode());

    GridModel child_model = frame.model;
    InvariantChecker child_checker = frame.checker;
    {
      ScopedObserver guard(&child_checker);
      child_model.execute(action);
    }
    ++result.transitions;
    path.push_back(action);

    if (auto violation = child_checker.check(child_model)) {
      result.violation = std::move(violation);
      result.violating_schedule = path;
      break;
    }

    std::set<std::uint16_t> child_sleep;
    if (config_.use_sleep_sets) {
      // A sleeping action stays asleep across `action` only if the two
      // commute; then this branch is put to sleep for later siblings.
      for (const std::uint16_t encoded : frame.sleep) {
        if (independent(decode(encoded), action)) child_sleep.insert(encoded);
      }
      frame.sleep.insert(action.encode());
    }
    // NOTE: push may reallocate the stack — `frame` is dead after this.
    if (!push(std::move(child_model), std::move(child_checker),
              std::move(child_sleep))) {
      path.pop_back();
    }
  }

  result.distinct_states = cache.size();
  return result;
}

std::string format_summary(const ExploreConfig& config,
                           const ExploreResult& result) {
  const ModelConfig& m = config.model;
  std::string out = "vgrid-mc summary v1\n";
  out += "model clients=" + std::to_string(m.clients) +
         " workunits=" + std::to_string(m.workunits) +
         " replication=" + std::to_string(m.replication) +
         " quorum=" + std::to_string(m.quorum) +
         " deaths=" + std::to_string(m.max_deaths) +
         " fault=" + grid::to_string(m.fault) + "\n";
  out += "search max-depth=" + std::to_string(config.max_depth) +
         " max-states=" + std::to_string(config.max_states) +
         " sleep-sets=" + onoff(config.use_sleep_sets) +
         " state-cache=" + onoff(config.use_state_cache) + "\n";
  out += "states visited=" + std::to_string(result.states_visited) +
         " distinct=" + std::to_string(result.distinct_states) +
         " transitions=" + std::to_string(result.transitions) + "\n";
  out += "interleavings total=" + std::to_string(result.interleavings) +
         " terminal=" + std::to_string(result.terminal_states) + "\n";
  out += "pruned sleep=" + std::to_string(result.sleep_pruned) +
         " visited=" + std::to_string(result.visited_pruned) + "\n";
  out += "depth reached=" + std::to_string(result.max_depth_reached) +
         " depth-bound=" + yesno(result.depth_bound_hit) +
         " state-bound=" + yesno(result.state_bound_hit) + "\n";
  if (result.violation) {
    out += "verdict violation " + result.violation->invariant + "\n";
    out += "violation detail: " + result.violation->detail + "\n";
    out += "violation schedule steps=" +
           std::to_string(result.violating_schedule.size()) + "\n";
  } else {
    out += "verdict pass\n";
  }
  return out;
}

std::string render_schedule(const ModelConfig& model,
                            const std::vector<Action>& steps,
                            const Violation* violation) {
  std::string out = "vgrid-mc-schedule v1\n";
  out += "clients=" + std::to_string(model.clients) +
         " workunits=" + std::to_string(model.workunits) +
         " replication=" + std::to_string(model.replication) +
         " quorum=" + std::to_string(model.quorum) +
         " deaths=" + std::to_string(model.max_deaths) +
         " fault=" + grid::to_string(model.fault) + "\n";
  for (const Action& action : steps) {
    out += "step " + action_text(action) + "\n";
  }
  if (violation != nullptr) {
    out += "violation " + violation->invariant + ": " + violation->detail +
           "\n";
  }
  return out;
}

std::optional<Schedule> parse_schedule(const std::string& text,
                                       std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<Schedule> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "vgrid-mc-schedule v1") {
    return fail("bad magic: expected 'vgrid-mc-schedule v1'");
  }
  if (!std::getline(in, line)) return fail("missing config line");
  Schedule schedule;
  {
    std::istringstream tokens(line);
    std::string token;
    while (tokens >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos) {
        return fail("bad config token '" + token + "'");
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "fault") {
        const auto fault = grid::parse_injected_fault(value);
        if (!fault) return fail("unknown fault '" + value + "'");
        schedule.model.fault = *fault;
        continue;
      }
      int number = 0;
      try {
        number = std::stoi(value);
      } catch (...) {
        return fail("bad config value '" + token + "'");
      }
      if (key == "clients") {
        schedule.model.clients = number;
      } else if (key == "workunits") {
        schedule.model.workunits = number;
      } else if (key == "replication") {
        schedule.model.replication = number;
      } else if (key == "quorum") {
        schedule.model.quorum = number;
      } else if (key == "deaths") {
        schedule.model.max_deaths = number;
      } else {
        return fail("unknown config key '" + key + "'");
      }
    }
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream tokens(line);
    std::string tag;
    tokens >> tag;
    if (tag == "step") {
      std::string client, kind_name;
      if (!(tokens >> client >> kind_name)) {
        return fail("bad step line '" + line + "'");
      }
      if (client.size() < 2 || client[0] != 'c') {
        return fail("bad client id '" + client + "'");
      }
      int index = 0;
      try {
        index = std::stoi(client.substr(1));
      } catch (...) {
        return fail("bad client id '" + client + "'");
      }
      const auto kind = parse_kind(kind_name);
      if (!kind) return fail("unknown action '" + kind_name + "'");
      if (index < 0 || index >= schedule.model.clients) {
        return fail("client index out of range in '" + line + "'");
      }
      schedule.steps.push_back(Action{index, *kind});
    } else if (tag == "violation") {
      // "violation <invariant>: <detail>"
      std::string invariant;
      if (!(tokens >> invariant) || invariant.empty() ||
          invariant.back() != ':') {
        return fail("bad violation line '" + line + "'");
      }
      invariant.pop_back();
      std::string detail;
      std::getline(tokens, detail);
      if (!detail.empty() && detail.front() == ' ') detail.erase(0, 1);
      schedule.violation = Violation{invariant, detail};
    } else {
      return fail("unknown line '" + line + "'");
    }
  }
  return schedule;
}

ReplayResult replay_schedule(const Schedule& schedule) {
  GridModel model(schedule.model);
  InvariantChecker checker;
  for (std::size_t i = 0; i < schedule.steps.size(); ++i) {
    const Action& action = schedule.steps[i];
    const std::vector<Action> enabled = model.enabled();
    if (std::find(enabled.begin(), enabled.end(), action) == enabled.end()) {
      return {false, "step " + std::to_string(i + 1) + " (" +
                         action_text(action) + ") is not enabled"};
    }
    {
      ScopedObserver guard(&checker);
      model.execute(action);
    }
    if (const auto violation = checker.check(model)) {
      const bool at_recorded_point =
          schedule.violation && i + 1 == schedule.steps.size() &&
          violation->invariant == schedule.violation->invariant;
      if (at_recorded_point) {
        return {true, "reproduced violation " + violation->invariant +
                          " at step " + std::to_string(i + 1) + ": " +
                          violation->detail};
      }
      return {false, "unexpected violation " + violation->invariant +
                         " at step " + std::to_string(i + 1) + ": " +
                         violation->detail};
    }
  }
  if (schedule.violation) {
    return {false, "recorded violation " + schedule.violation->invariant +
                       " did not reproduce"};
  }
  return {true, "replayed " + std::to_string(schedule.steps.size()) +
                    " steps; all invariants hold"};
}

}  // namespace vgrid::mc
