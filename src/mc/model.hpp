#pragma once
// mc::GridModel — the explored system: one grid::ServerLogic plus a small
// fleet of deterministic model clients, advanced one transition at a time.
// Each client is a three-phase volunteer (fetch -> compute -> submit, loop)
// that may also die while holding work (its instance is then lost and must
// be recovered through the reissue path). The model is a *value*: copying
// it snapshots the whole protocol state, which is how the DFS explorer
// backtracks without replay.
//
// Time never advances: the server runs on a constant logical clock and
// deadline expiry is modeled as the explicit death transition, so two
// states that differ only in when steps happened are the same state —
// exactly what visited-state pruning needs.

#include <cstdint>
#include <string>
#include <vector>

#include "grid/server_logic.hpp"

namespace vgrid::mc {

struct ModelConfig {
  int clients = 3;
  int workunits = 3;
  int replication = 2;
  int quorum = 2;
  /// Total death transitions permitted across one execution (a budget,
  /// not per-client).
  int max_deaths = 1;
  grid::InjectedFault fault = grid::InjectedFault::kNone;
};

enum class ActionKind : std::uint8_t {
  kFetch = 0,  ///< request work (Idle -> HasWork, or Idle -> Done on dry)
  kCompute,    ///< run the executor locally (HasWork -> Computed)
  kSubmit,     ///< submit the result (Computed -> Idle)
  kDie,        ///< vanish holding work; the instance is lost (-> Dead)
};

const char* to_string(ActionKind kind) noexcept;

/// One schedulable transition: client `client` performs `kind`.
struct Action {
  int client = 0;
  ActionKind kind = ActionKind::kFetch;

  bool operator==(const Action& other) const noexcept {
    return client == other.client && kind == other.kind;
  }
  /// Dense encoding for sleep sets / explored-action records.
  std::uint16_t encode() const noexcept {
    return static_cast<std::uint16_t>(client * 4 +
                                      static_cast<int>(kind));
  }
};

/// Two transitions are independent when they commute from every state:
/// actions of different clients where at least one is the purely local
/// compute step (everything else touches shared server state).
bool independent(const Action& a, const Action& b) noexcept;

enum class ClientPhase : std::uint8_t {
  kIdle = 0,  ///< ready to request work
  kHasWork,   ///< holds an instance, not yet executed
  kComputed,  ///< holds a finished result, not yet submitted
  kDone,      ///< saw NO_WORK; retired
  kDead,      ///< died holding work; never acts again
};

const char* to_string(ClientPhase phase) noexcept;

struct ClientState {
  ClientPhase phase = ClientPhase::kIdle;
  grid::Workunit work;  ///< valid in kHasWork / kComputed
  std::string output;   ///< valid in kComputed
};

class GridModel {
 public:
  explicit GridModel(const ModelConfig& config);

  const ModelConfig& config() const noexcept { return config_; }
  const grid::ServerLogic& server() const noexcept { return server_; }
  const std::vector<ClientState>& clients() const noexcept {
    return clients_;
  }
  int deaths_used() const noexcept { return deaths_used_; }

  static std::string client_id(int index);

  /// Enabled transitions in canonical order (client index, then kind) —
  /// the DFS expansion order, so exploration is deterministic.
  std::vector<Action> enabled() const;

  /// Execute one transition (must be enabled). Protocol steps announced
  /// through the mc::TransitionPoint seam fire synchronously, so install a
  /// ScopedObserver first to audit them.
  void execute(const Action& action);

  bool terminal() const;

  /// Canonical rendering of the full explored state. Client identities are
  /// abstracted away: per-client signatures are sorted and clients renamed
  /// to their rank, so states that are client-permutations of each other
  /// render identically (symmetry reduction for free).
  std::string canonical_state() const;

  /// FNV-1a 64 of canonical_state().
  std::uint64_t state_hash() const;

 private:
  ModelConfig config_;
  grid::ServerLogic server_;
  std::vector<ClientState> clients_;
  int deaths_used_ = 0;
};

}  // namespace vgrid::mc
