#include "report/timeline.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace vgrid::report {

TimelineReport::TimelineReport(
    const std::vector<sim::TraceRecord>& records) {
  bool first = true;
  for (const auto& record : records) {
    if (first) {
      span_begin_ = span_end_ = record.time;
      first = false;
    }
    span_begin_ = std::min(span_begin_, record.time);
    span_end_ = std::max(span_end_, record.time);
    switch (record.kind) {
      case sim::TraceKind::kDiskOp:
        ++disk_ops_;
        continue;
      case sim::TraceKind::kNetOp:
        ++net_ops_;
        continue;
      default: break;
    }
    ThreadActivity& activity = activities_[record.subject];
    if (activity.name.empty()) {
      activity.name = record.subject;
      activity.first_event = record.time;
    }
    activity.last_event = record.time;
    switch (record.kind) {
      case sim::TraceKind::kSchedule:
        ++activity.schedules;
        schedule_records_.push_back(record);
        break;
      case sim::TraceKind::kPreempt: ++activity.preemptions; break;
      case sim::TraceKind::kBlock: ++activity.blocks; break;
      case sim::TraceKind::kWake: ++activity.wakes; break;
      default: break;
    }
  }
}

std::string TimelineReport::ascii() const {
  std::string out = util::format(
      "%-24s %9s %9s %7s %6s %12s %12s\n", "thread", "schedules",
      "preempts", "blocks", "wakes", "first (s)", "last (s)");
  for (const auto& [name, activity] : activities_) {
    out += util::format("%-24s %9zu %9zu %7zu %6zu %12.6f %12.6f\n",
                        name.c_str(), activity.schedules,
                        activity.preemptions, activity.blocks,
                        activity.wakes,
                        sim::to_seconds(activity.first_event),
                        sim::to_seconds(activity.last_event));
  }
  out += util::format("device ops: disk %zu, net %zu\n", disk_ops_,
                      net_ops_);
  return out;
}

std::string TimelineReport::strip_chart(std::size_t columns) const {
  if (columns == 0 || span_end_ <= span_begin_) return {};
  const double bucket =
      static_cast<double>(span_end_ - span_begin_) /
      static_cast<double>(columns);
  std::map<std::string, std::vector<bool>> strips;
  for (const auto& record : schedule_records_) {
    auto& strip = strips[record.subject];
    if (strip.empty()) strip.assign(columns, false);
    auto index = static_cast<std::size_t>(
        static_cast<double>(record.time - span_begin_) / bucket);
    index = std::min(index, columns - 1);
    strip[index] = true;
  }
  std::string out;
  for (const auto& [name, strip] : strips) {
    out += util::format("%-24s |", name.c_str());
    for (const bool active : strip) out += active ? '#' : '.';
    out += "|\n";
  }
  return out;
}

}  // namespace vgrid::report
