#include "report/timeseries_export.hpp"

#include <cerrno>
#include <fstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace vgrid::report {

namespace {

std::string labels_json(const obs::Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += '"';
    out += util::json_escape(key);
    out += "\":\"";
    out += util::json_escape(value);
    out += '"';
  }
  out += "}";
  return out;
}

/// CSV-quote a field: wrap in double quotes, doubling embedded quotes.
std::string csv_quote(const std::string& field) {
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

/// Human title of a series for plot legends: name{labels}/track.
std::string series_title(const obs::Timeseries::Series& series) {
  std::string title = series.name;
  if (!series.labels.empty()) title += labels_json(series.labels);
  title += "/";
  title += obs::track_kind_name(series.kind);
  return title;
}

void write_text(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw util::SystemError("cannot open " + path, errno);
  out << body;
  if (!out) throw util::SystemError("write failed: " + path, errno);
}

}  // namespace

std::string timeseries_csv(const obs::Timeseries& series) {
  std::string out = "name,labels,track,t_ms,value\n";
  for (const obs::Timeseries::Series* s : series.series()) {
    const std::string prefix = util::format(
        "%s,%s,%s,", csv_quote(s->name).c_str(),
        csv_quote(labels_json(s->labels)).c_str(),
        obs::track_kind_name(s->kind));
    for (const obs::Timeseries::Point& point : s->points) {
      out += prefix;
      out += util::format("%lld,%lld\n",
                          static_cast<long long>(point.t_ms),
                          static_cast<long long>(point.value));
    }
  }
  return out;
}

std::string timeseries_gnuplot_data(const obs::Timeseries& series) {
  std::string out;
  bool first = true;
  for (const obs::Timeseries::Series* s : series.series()) {
    if (!first) out += "\n\n";  // block separator (gnuplot `index`)
    first = false;
    out += "# " + series_title(*s) + "\n";
    for (const obs::Timeseries::Point& point : s->points) {
      out += util::format("%lld %lld\n",
                          static_cast<long long>(point.t_ms),
                          static_cast<long long>(point.value));
    }
  }
  return out;
}

std::string timeseries_gnuplot_script(const obs::Timeseries& series,
                                      const std::string& data_path) {
  std::string out;
  out += "set xlabel 'sim time (ms)'\n";
  out += "set ylabel 'value'\n";
  out += "set key outside right\n";
  out += "set grid\n";
  out += "plot \\\n";
  const std::vector<const obs::Timeseries::Series*> all = series.series();
  for (std::size_t i = 0; i < all.size(); ++i) {
    std::string title = series_title(*all[i]);
    // Gnuplot titles are single-quoted; double any embedded quote.
    std::string escaped;
    for (const char c : title) {
      if (c == '\'') escaped += "''";
      else escaped += c;
    }
    out += util::format("  '%s' index %zu using 1:2 with linespoints "
                        "title '%s'%s\n",
                        data_path.c_str(), i, escaped.c_str(),
                        i + 1 < all.size() ? ", \\" : "");
  }
  if (all.empty()) out += "  NaN notitle\n";
  return out;
}

void write_timeseries(const std::string& path,
                      const obs::Timeseries& series) {
  write_text(path, series.render_json());
  write_text(path + ".csv", timeseries_csv(series));
  const std::string data_path = path + ".dat";
  write_text(data_path, timeseries_gnuplot_data(series));
  write_text(path + ".gp", timeseries_gnuplot_script(series, data_path));
}

}  // namespace vgrid::report
