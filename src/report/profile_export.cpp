#include "report/profile_export.hpp"

#include <algorithm>
#include <cerrno>
#include <fstream>
#include <map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace vgrid::report {

namespace {

using obs::Profiler;

std::int64_t clamped_exclusive(const Profiler& profiler,
                               std::int32_t index) {
  return std::max<std::int64_t>(0, profiler.exclusive_ns(index));
}

/// Children of `index` sorted by name — the canonical export order (the
/// in-memory order is creation order, which depends on which code path
/// ran first).
std::vector<std::int32_t> sorted_children(const Profiler& profiler,
                                          std::int32_t index) {
  std::vector<std::int32_t> children =
      profiler.nodes()[static_cast<std::size_t>(index)].children;
  std::sort(children.begin(), children.end(),
            [&](std::int32_t a, std::int32_t b) {
              return profiler.nodes()[static_cast<std::size_t>(a)].name <
                     profiler.nodes()[static_cast<std::size_t>(b)].name;
            });
  return children;
}

void append_node_json(const Profiler& profiler, std::int32_t index,
                      std::string* out) {
  const Profiler::Node& node =
      profiler.nodes()[static_cast<std::size_t>(index)];
  *out += util::format(
      "{\"name\":\"%s\",\"count\":%llu,\"incl_ns\":%lld,\"excl_ns\":%lld,"
      "\"children\":[",
      util::json_escape(node.name).c_str(),
      static_cast<unsigned long long>(node.count),
      static_cast<long long>(node.inclusive_ns),
      static_cast<long long>(clamped_exclusive(profiler, index)));
  bool first = true;
  for (const std::int32_t child : sorted_children(profiler, index)) {
    if (!first) *out += ",";
    first = false;
    append_node_json(profiler, child, out);
  }
  *out += "]}";
}

void append_folded(const Profiler& profiler, std::int32_t index,
                   const std::string& prefix,
                   std::vector<std::string>* lines) {
  const Profiler::Node& node =
      profiler.nodes()[static_cast<std::size_t>(index)];
  const std::string path =
      prefix.empty() ? node.name : prefix + ";" + node.name;
  const std::int64_t exclusive = clamped_exclusive(profiler, index);
  if (exclusive > 0) {
    lines->push_back(
        path + util::format(" %lld", static_cast<long long>(exclusive)));
  }
  for (const std::int32_t child : sorted_children(profiler, index)) {
    append_folded(profiler, child, path, lines);
  }
}

void write_text(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw util::SystemError("cannot open " + path, errno);
  out << body;
  if (!out) throw util::SystemError("write failed: " + path, errno);
}

}  // namespace

std::string profile_json(const Profiler& profiler) {
  std::string out = util::format(
      "{\n\"vgrid_profile_version\":1,\n\"total_ns\":%lld,\n\"roots\":[",
      static_cast<long long>(profiler.total_ns()));
  bool first = true;
  for (const std::int32_t root : sorted_children(profiler, 0)) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    append_node_json(profiler, root, &out);
  }
  out += "\n]\n}\n";
  return out;
}

std::string profile_folded(const Profiler& profiler) {
  std::vector<std::string> lines;
  for (const std::int32_t root : sorted_children(profiler, 0)) {
    append_folded(profiler, root, "", &lines);
  }
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

std::vector<ProfileRow> top_exclusive(const Profiler& profiler,
                                      std::size_t limit) {
  // Aggregate by scope name: one PROF_SCOPE site can appear at several
  // tree positions (e.g. event-queue pops under every figure), and the
  // table answers "which scope costs the most" rather than "which path".
  std::map<std::string, ProfileRow> by_name;
  const auto& nodes = profiler.nodes();
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    ProfileRow& row = by_name[nodes[i].name];
    row.name = nodes[i].name;
    row.count += nodes[i].count;
    row.exclusive_ns +=
        clamped_exclusive(profiler, static_cast<std::int32_t>(i));
    row.inclusive_ns += nodes[i].inclusive_ns;
  }
  std::vector<ProfileRow> rows;
  rows.reserve(by_name.size());
  for (const auto& [name, row] : by_name) rows.push_back(row);
  std::sort(rows.begin(), rows.end(),
            [](const ProfileRow& a, const ProfileRow& b) {
              if (a.exclusive_ns != b.exclusive_ns) {
                return a.exclusive_ns > b.exclusive_ns;
              }
              return a.name < b.name;
            });
  if (rows.size() > limit) rows.resize(limit);
  return rows;
}

void write_profile_json(const std::string& path, const Profiler& profiler) {
  write_text(path, profile_json(profiler));
}

void write_profile_folded(const std::string& path,
                          const Profiler& profiler) {
  write_text(path, profile_folded(profiler));
}

}  // namespace vgrid::report
