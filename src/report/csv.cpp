#include "report/csv.hpp"

#include <cerrno>
#include <fstream>

#include "util/error.hpp"

namespace vgrid::report {

void write_csv(const std::string& path, const Table& table) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw util::SystemError("write_csv: cannot open " + path, errno);
  out << table.csv();
  if (!out) throw util::SystemError("write_csv: write failed " + path, errno);
}

}  // namespace vgrid::report
