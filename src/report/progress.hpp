#pragma once
// Single-writer live progress line for `vgrid watch` (and any long run
// that wants one). All progress output goes through ONE ProgressWriter to
// stderr, never stdout — canonical artifacts (summaries, JSON exports)
// own stdout, so a redirected `vgrid ... > out.json` can never have a
// progress frame spliced into it.
//
// Rendering adapts to the stream: when stderr is a terminal the line is
// redrawn in place ("\r" + erase); when it is a pipe or file each DISTINCT
// frame is emitted as a plain line (no control codes, no duplicate spam).
// `--no-progress` (set_progress_enabled(false)) silences it entirely —
// the escape hatch for CI logs and byte-diffed captures.
//
// Thread-safe: fleet's on_progress callback fires on TaskPool worker
// threads, so update() serializes frames under a mutex.

#include <mutex>
#include <string>

namespace vgrid::report {

/// Global kill switch (--no-progress). Defaults to enabled; affects
/// ProgressWriters created before or after the call.
void set_progress_enabled(bool enabled);
bool progress_enabled() noexcept;

class ProgressWriter {
 public:
  ProgressWriter();

  /// Render one frame. In-place redraw on a terminal; a plain line (only
  /// when the frame changed) otherwise. No-op when progress is disabled.
  void update(const std::string& frame);

  /// Finish the live line: moves the cursor to a fresh line on a
  /// terminal so subsequent output does not overwrite the last frame.
  void done();

  /// Whether stderr was a terminal when this writer was built.
  bool interactive() const noexcept { return interactive_; }

 private:
  std::mutex mutex_;
  std::string last_frame_;
  bool interactive_ = false;
  bool dirty_ = false;  ///< a live frame is on screen (needs done())
};

}  // namespace vgrid::report
