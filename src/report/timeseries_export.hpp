#pragma once
// Exporters for obs::Timeseries — the artifacts behind
// `vgrid timeseries <fig|fleet> --out FILE`. Three shapes per export:
//
//  FILE       — the canonical sorted JSON (Timeseries::render_json),
//               the byte-diffed determinism artifact;
//  FILE.csv   — one flat row per point (name,labels,track,t_ms,value),
//               spreadsheet- and pandas-friendly;
//  FILE.gp    — a gnuplot script plotting every track from FILE.dat,
//               one data block per series (blank-line separated), so
//               `gnuplot FILE.gp` renders the run with zero editing.
//
// All three are derived from the same sorted series view, so they are as
// byte-stable as the JSON itself.

#include <string>

#include "obs/timeseries.hpp"

namespace vgrid::report {

/// Flat CSV of every retained point: header then
/// "name,labels,track,t_ms,value" rows in (name, labels, track, append)
/// order. The labels column is the canonical {"k":"v"} JSON, quoted.
std::string timeseries_csv(const obs::Timeseries& series);

/// Gnuplot data blocks: one block per series ("# name labels track"
/// comment, then "t_ms value" rows), blank-line separated, indexable by
/// `index N` in the companion script.
std::string timeseries_gnuplot_data(const obs::Timeseries& series);

/// Gnuplot script plotting every block of `data_path` (the .dat file)
/// with its series title.
std::string timeseries_gnuplot_script(const obs::Timeseries& series,
                                      const std::string& data_path);

/// Write the full artifact set: render_json() to `path`, the CSV to
/// `path + ".csv"`, the data blocks to `path + ".dat"`, and the script to
/// `path + ".gp"`. Throws util::SystemError on I/O failure.
void write_timeseries(const std::string& path,
                      const obs::Timeseries& series);

}  // namespace vgrid::report
