#pragma once
// Chrome-tracing export: turn a simulation trace into the JSON event
// format that chrome://tracing / Perfetto load, giving a zoomable visual
// timeline of scheduling decisions and device activity.

#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace vgrid::report {

/// Render trace records as a Chrome trace-event JSON array. Schedule ->
/// preempt/block pairs become duration events on a per-thread row;
/// device completions become instant events.
std::string chrome_trace_json(const std::vector<sim::TraceRecord>& records);

/// Write the JSON to a file (open chrome://tracing and load it).
/// Throws SystemError on I/O failure.
void write_chrome_trace(const std::string& path,
                        const std::vector<sim::TraceRecord>& records);

}  // namespace vgrid::report
