#pragma once
// Chrome-tracing export: turn a simulation trace into the JSON event
// format that chrome://tracing / Perfetto load, giving a zoomable visual
// timeline of scheduling decisions and device activity.

#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "sim/trace.hpp"

namespace vgrid::report {

/// Render trace records as a Chrome trace-event JSON array. Schedule ->
/// preempt/block pairs become duration events on a per-thread row;
/// device completions become instant events.
std::string chrome_trace_json(const std::vector<sim::TraceRecord>& records);

/// Write the JSON to a file (open chrome://tracing and load it).
/// Throws SystemError on I/O failure.
void write_chrome_trace(const std::string& path,
                        const std::vector<sim::TraceRecord>& records);

/// One task executed by a core::TaskPool worker: real (wall-clock) timing
/// of a repetition or environment measurement, for visualizing how the
/// parallel experiment engine fills its workers. Observability only —
/// wall-clock values never feed back into measured results.
struct WorkerSpan {
  int worker = 0;            ///< worker index within the pool
  std::string label;         ///< e.g. "fig5:vmplayer (idle)" or "rep 17"
  std::int64_t start_ns = 0; ///< util::monotonic_time_ns at task start
  std::int64_t end_ns = 0;   ///< ... and at task end
};

/// Render worker spans as Chrome trace-event JSON: one row per worker
/// (pid "experiment-pool"), timestamps normalized to the earliest span.
std::string worker_trace_json(const std::vector<WorkerSpan>& spans);

/// Write the per-worker timeline next to a bench run. Throws SystemError
/// on I/O failure.
void write_worker_trace(const std::string& path,
                        const std::vector<WorkerSpan>& spans);

/// Render obs profiling spans AND simulation trace records into ONE
/// Chrome trace: obs spans on pid "wall-time" rows (wall-clock, and a
/// second "sim-time" row for spans that carried a sim clock), simulation
/// records on pid 1 exactly as chrome_trace_json renders them. Lets a
/// reader line up "where the wall time went" against "what the simulated
/// machine was doing".
std::string obs_trace_json(const std::vector<obs::SpanRecord>& spans,
                           const std::vector<sim::TraceRecord>& records);

/// Write the combined obs + simulation trace. Throws SystemError on I/O
/// failure.
void write_obs_trace(const std::string& path,
                     const std::vector<obs::SpanRecord>& spans,
                     const std::vector<sim::TraceRecord>& records);

}  // namespace vgrid::report
