#include "report/barchart.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace vgrid::report {

BarChart& BarChart::add(std::string label, double value) {
  bars_.push_back(Bar{std::move(label), value});
  return *this;
}

BarChart& BarChart::set_reference(double value, std::string label) {
  has_reference_ = true;
  reference_value_ = value;
  reference_label_ = std::move(label);
  return *this;
}

std::string BarChart::ascii(std::size_t width) const {
  double peak = has_reference_ ? reference_value_ : 0.0;
  std::size_t label_width = reference_label_.size();
  for (const Bar& bar : bars_) {
    peak = std::max(peak, bar.value);
    label_width = std::max(label_width, bar.label.size());
  }
  if (peak <= 0.0) peak = 1.0;

  std::string out;
  if (!title_.empty()) out += title_ + '\n';
  auto line = [&](const std::string& label, double value) {
    // Clamp: negative values render as an empty bar (the numeric column
    // still shows the sign), values above the peak cannot occur.
    const double fraction = std::max(0.0, value / peak);
    const auto bar_len = static_cast<std::size_t>(
        fraction * static_cast<double>(width) + 0.5);
    out += util::format("%-*s |", static_cast<int>(label_width),
                        label.c_str());
    out.append(bar_len, '#');
    out += util::format(" %.3f", value);
    if (!unit_.empty()) out += " " + unit_;
    out += '\n';
  };
  if (has_reference_) line(reference_label_, reference_value_);
  for (const Bar& bar : bars_) line(bar.label, bar.value);
  return out;
}

}  // namespace vgrid::report
