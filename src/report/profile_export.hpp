#pragma once
// Renderers for obs::Profiler trees — the "where did our wall time go"
// side of the observability layer. Three shapes:
//
//  profile_json    — canonical sorted JSON tree (children ordered by
//                    name at every level), schema-versioned; the shape a
//                    future PR diffs, even though the ns values are wall
//                    clock and vary run to run.
//  profile_folded  — Brendan Gregg folded-stack lines
//                    ("a;b;c <exclusive_ns>"), directly consumable by
//                    flamegraph.pl or speedscope.
//  top_exclusive   — the top-N self-time rows behind `vgrid profile`.
//
// Values are nanoseconds; exporters clamp marginally-negative exclusive
// times (timer granularity) at zero so downstream tools never see a
// negative sample.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/profiler.hpp"

namespace vgrid::report {

/// Canonical JSON profile: {"vgrid_profile_version":1,"total_ns":...,
/// "roots":[{"name":...,"count":...,"incl_ns":...,"excl_ns":...,
/// "children":[...]},...]} with children sorted by name at every level.
std::string profile_json(const obs::Profiler& profiler);

/// Folded stacks, one line per tree node with nonzero exclusive time:
/// "parent;child;leaf <exclusive_ns>\n", sorted by path.
std::string profile_folded(const obs::Profiler& profiler);

struct ProfileRow {
  std::string name;        ///< scope name (tree position ignored)
  std::uint64_t count = 0;
  std::int64_t exclusive_ns = 0;
  std::int64_t inclusive_ns = 0;
};

/// Top-`limit` scopes by exclusive time, aggregated by scope NAME across
/// tree positions (a scope that appears under several parents reports one
/// row). Ties break by name so the table is deterministic.
std::vector<ProfileRow> top_exclusive(const obs::Profiler& profiler,
                                      std::size_t limit);

/// Write profile_json to `path`. Throws util::SystemError on I/O failure.
void write_profile_json(const std::string& path,
                        const obs::Profiler& profiler);

/// Write profile_folded to `path`. Throws util::SystemError on I/O
/// failure.
void write_profile_folded(const std::string& path,
                          const obs::Profiler& profiler);

}  // namespace vgrid::report
