#pragma once
// Rendering of obs::EventLog lifecycle journals (the `vgrid trace` /
// `vgrid tails` back end):
//  - per-workunit text timelines of the retained traces;
//  - Chrome trace-event JSON with flow arrows (ph "s"/"f") linking each
//    event to its causal parent, on a "lifecycle" pid that splices next
//    to the existing wall-time / sim-time pids of write_obs_trace;
//  - the tails decomposition table: turnaround percentiles split into
//    queue-wait / compute / validation / retry with exact integer
//    shares, plus the wasted-work ledger by trace label;
//  - the reconciliation audit behind `vgrid tails --selfcheck`, which
//    cross-checks the journal's aggregates against the independent
//    fleet/obs turnaround histogram (count, sum, extremes, and the
//    component-sum identity must all hold exactly).

#include <string>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/registry.hpp"
#include "sim/trace.hpp"

namespace vgrid::report {

/// Text timelines of retained traces, sorted by trace id. `max_traces`
/// bounds the output (0 = all); `anomalous_only` keeps just the
/// lifecycles with a reissue / expiry / invalid result.
std::string render_timelines(const obs::EventLog& log,
                             std::size_t max_traces = 0,
                             bool anomalous_only = false);

/// Chrome trace-event JSON of the retained traces: one tid per
/// workunit on pid "lifecycle", a duration slice per component-bearing
/// event, an instant per event, and a flow arrow from each event's
/// causal parent. `max_traces` bounds the rows (0 = all).
std::string event_trace_json(const obs::EventLog& log,
                             std::size_t max_traces = 0);

/// One Chrome trace combining the lifecycle rows with the profiling
/// spans (pid "wall-time"/"sim-time") and the simulation records
/// (pid 1) exactly as write_obs_trace renders them.
std::string combined_trace_json(const obs::EventLog& log,
                                const std::vector<obs::SpanRecord>& spans,
                                const std::vector<sim::TraceRecord>& records);

/// Write combined_trace_json to `path`. Throws SystemError on I/O
/// failure.
void write_event_trace(const std::string& path, const obs::EventLog& log,
                       const std::vector<obs::SpanRecord>& spans,
                       const std::vector<sim::TraceRecord>& records);

/// The tails decomposition table + wasted-work ledger. Byte-stable for
/// a deterministic journal (feeds the determinism audit).
std::string format_tails(const obs::EventLog& log);

/// Reconcile the journal against an independently accumulated
/// turnaround histogram: counts, sums and extremes must match exactly,
/// the per-component histogram counts must equal the turnaround count,
/// and the component sums must add up to the turnaround sum. Returns
/// human-readable violations (empty = ok) — what gives the
/// eventlog.finds.dropped_merge mutation test its teeth.
std::vector<std::string> reconcile_tails(const obs::EventLog& log,
                                         const obs::Histogram& turnaround);

}  // namespace vgrid::report
