#include "report/chrome_trace.hpp"

#include <cerrno>
#include <fstream>
#include <map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace vgrid::report {

namespace {

using util::json_escape;

double micros(sim::SimTime time) {
  return static_cast<double>(time) / 1e3;  // ns -> us (Chrome's unit)
}

}  // namespace

std::string chrome_trace_json(
    const std::vector<sim::TraceRecord>& records) {
  std::string out = "[\n";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) out += ",\n";
    first = false;
    out += event;
  };

  // Open duration events per subject (a schedule begins one; preempt,
  // block, or a later schedule of someone else does not end it — only the
  // same subject's next lifecycle record does).
  std::map<std::string, sim::SimTime> open;
  for (const auto& record : records) {
    const std::string name = json_escape(record.subject);
    switch (record.kind) {
      case sim::TraceKind::kSchedule:
        open[record.subject] = record.time;
        break;
      case sim::TraceKind::kPreempt:
      case sim::TraceKind::kBlock: {
        const auto it = open.find(record.subject);
        if (it != open.end()) {
          emit(util::format(
              "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
              "\"pid\":1,\"tid\":\"%s\"}",
              name.c_str(), micros(it->second),
              micros(record.time - it->second), name.c_str()));
          open.erase(it);
        }
        break;
      }
      case sim::TraceKind::kDiskOp:
      case sim::TraceKind::kNetOp:
      case sim::TraceKind::kVmExit:
      case sim::TraceKind::kCheckpoint:
      case sim::TraceKind::kWake:
      case sim::TraceKind::kCustom: {
        emit(util::format(
            "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":1,"
            "\"tid\":\"%s\",\"s\":\"t\",\"args\":{\"detail\":\"%s\"}}",
            name.c_str(), micros(record.time), name.c_str(),
            json_escape(record.detail).c_str()));
        break;
      }
    }
  }
  // Close any still-running slices at their start (zero-length marker).
  for (const auto& [subject, start] : open) {
    const std::string name = json_escape(subject);
    emit(util::format(
        "{\"name\":\"%s (running)\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":1,"
        "\"tid\":\"%s\",\"s\":\"t\"}",
        name.c_str(), micros(start), name.c_str()));
  }
  out += "\n]\n";
  return out;
}

void write_chrome_trace(const std::string& path,
                        const std::vector<sim::TraceRecord>& records) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw util::SystemError("write_chrome_trace: cannot open " + path,
                            errno);
  }
  out << chrome_trace_json(records);
  if (!out) {
    throw util::SystemError("write_chrome_trace: write failed " + path,
                            errno);
  }
}

std::string worker_trace_json(const std::vector<WorkerSpan>& spans) {
  std::int64_t origin = 0;
  for (const WorkerSpan& span : spans) {
    if (origin == 0 || span.start_ns < origin) origin = span.start_ns;
  }
  std::string out = "[\n";
  bool first = true;
  for (const WorkerSpan& span : spans) {
    if (!first) out += ",\n";
    first = false;
    out += util::format(
        "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":\"experiment-pool\",\"tid\":\"worker %d\"}",
        json_escape(span.label).c_str(),
        static_cast<double>(span.start_ns - origin) / 1e3,
        static_cast<double>(span.end_ns - span.start_ns) / 1e3,
        span.worker);
  }
  out += "\n]\n";
  return out;
}

void write_worker_trace(const std::string& path,
                        const std::vector<WorkerSpan>& spans) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw util::SystemError("write_worker_trace: cannot open " + path,
                            errno);
  }
  out << worker_trace_json(spans);
  if (!out) {
    throw util::SystemError("write_worker_trace: write failed " + path,
                            errno);
  }
}

std::string obs_trace_json(const std::vector<obs::SpanRecord>& spans,
                           const std::vector<sim::TraceRecord>& records) {
  std::int64_t wall_origin = 0;
  for (const obs::SpanRecord& span : spans) {
    if (wall_origin == 0 || span.wall_start_ns < wall_origin) {
      wall_origin = span.wall_start_ns;
    }
  }
  std::string out = "[\n";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) out += ",\n";
    first = false;
    out += event;
  };
  for (const obs::SpanRecord& span : spans) {
    const std::string name = json_escape(span.name);
    emit(util::format(
        "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":\"wall-time\",\"tid\":\"obs\"}",
        name.c_str(),
        static_cast<double>(span.wall_start_ns - wall_origin) / 1e3,
        static_cast<double>(span.wall_end_ns - span.wall_start_ns) / 1e3));
    if (span.has_sim_time) {
      emit(util::format(
          "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
          "\"pid\":\"sim-time\",\"tid\":\"obs\"}",
          name.c_str(), micros(span.sim_start_ns),
          micros(span.sim_end_ns - span.sim_start_ns)));
    }
  }
  // Splice in the simulation timeline (strip chrome_trace_json's own
  // array brackets) so one file shows both clock domains.
  if (!records.empty()) {
    std::string sim_json = chrome_trace_json(records);
    const std::size_t open = sim_json.find('[');
    const std::size_t close = sim_json.rfind(']');
    if (open != std::string::npos && close != std::string::npos &&
        close > open + 1) {
      std::string body = sim_json.substr(open + 1, close - open - 1);
      while (!body.empty() &&
             (body.front() == '\n' || body.front() == ' ')) {
        body.erase(body.begin());
      }
      while (!body.empty() && (body.back() == '\n' || body.back() == ' ')) {
        body.pop_back();
      }
      if (!body.empty()) emit(body);
    }
  }
  out += "\n]\n";
  return out;
}

void write_obs_trace(const std::string& path,
                     const std::vector<obs::SpanRecord>& spans,
                     const std::vector<sim::TraceRecord>& records) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw util::SystemError("write_obs_trace: cannot open " + path, errno);
  }
  out << obs_trace_json(spans, records);
  if (!out) {
    throw util::SystemError("write_obs_trace: write failed " + path, errno);
  }
}

}  // namespace vgrid::report
