#pragma once
// Result tables: what the figure benches print. Column-aligned ASCII with
// an optional title, and CSV export for downstream plotting.

#include <string>
#include <vector>

namespace vgrid::report {

class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  Table& set_header(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> row);

  /// Convenience: build a row from label + formatted numbers.
  Table& add_row(const std::string& label, const std::vector<double>& values,
                 int precision = 3);

  const std::string& title() const noexcept { return title_; }
  const std::vector<std::string>& header() const noexcept { return header_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  /// Column-aligned rendering with a separator under the header.
  std::string ascii() const;

  /// RFC-4180-ish CSV (quotes fields containing commas/quotes).
  std::string csv() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vgrid::report
