#pragma once
// Trace analysis: turn a simulation's Tracer records into per-thread
// activity summaries and an ASCII timeline — the "what actually happened
// on the cores" view used when debugging scheduling experiments.

#include <map>
#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace vgrid::report {

struct ThreadActivity {
  std::string name;
  std::size_t schedules = 0;   ///< times placed on a core
  std::size_t preemptions = 0;
  std::size_t blocks = 0;      ///< I/O or sleep blocks
  std::size_t wakes = 0;
  sim::SimTime first_event = 0;
  sim::SimTime last_event = 0;
};

class TimelineReport {
 public:
  /// Digest a trace (records of any kind; unknown subjects are grouped by
  /// name).
  explicit TimelineReport(const std::vector<sim::TraceRecord>& records);

  const std::map<std::string, ThreadActivity>& activities() const noexcept {
    return activities_;
  }

  std::size_t disk_ops() const noexcept { return disk_ops_; }
  std::size_t net_ops() const noexcept { return net_ops_; }

  /// Per-thread summary table.
  std::string ascii() const;

  /// ASCII strip chart: one row per subject, `columns` buckets over the
  /// traced interval, '#' where the subject had scheduling activity.
  std::string strip_chart(std::size_t columns = 64) const;

 private:
  std::map<std::string, ThreadActivity> activities_;
  std::vector<sim::TraceRecord> schedule_records_;
  std::size_t disk_ops_ = 0;
  std::size_t net_ops_ = 0;
  sim::SimTime span_begin_ = 0;
  sim::SimTime span_end_ = 0;
};

}  // namespace vgrid::report
