#include "report/table.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace vgrid::report {

Table& Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
  return *this;
}

Table& Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
  return *this;
}

Table& Table::add_row(const std::string& label,
                      const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (const double v : values) {
    row.push_back(util::format_double(v, precision));
  }
  return add_row(std::move(row));
}

std::string Table::ascii() const {
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& row : rows_) grow(row);

  auto render_row = [&widths](const std::vector<std::string>& row) {
    std::string out;
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out += "  ";
      out += row[i];
      out.append(widths[i] - row[i].size(), ' ');
    }
    // Trim trailing padding.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
    return out;
  };

  std::string out;
  if (!title_.empty()) out += title_ + '\n';
  if (!header_.empty()) {
    out += render_row(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i != 0 ? 2 : 0);
    }
    out.append(total, '-');
    out += '\n';
  }
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::csv() const {
  auto field = [](const std::string& raw) {
    if (raw.find_first_of(",\"\n") == std::string::npos) return raw;
    std::string quoted = "\"";
    for (const char c : raw) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  std::string out;
  auto render = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out += ',';
      out += field(row[i]);
    }
    out += '\n';
  };
  if (!header_.empty()) render(header_);
  for (const auto& row : rows_) render(row);
  return out;
}

}  // namespace vgrid::report
