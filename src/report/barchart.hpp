#pragma once
// ASCII bar charts approximating the paper's figures in terminal output.

#include <string>
#include <vector>

namespace vgrid::report {

struct Bar {
  std::string label;
  double value = 0.0;
};

class BarChart {
 public:
  explicit BarChart(std::string title = {}, std::string unit = {})
      : title_(std::move(title)), unit_(std::move(unit)) {}

  BarChart& add(std::string label, double value);

  /// Draw a reference line at `value` (e.g. native = 1.0).
  BarChart& set_reference(double value, std::string label = "native");

  /// Render; bars scale so the maximum fills `width` characters.
  std::string ascii(std::size_t width = 48) const;

 private:
  std::string title_;
  std::string unit_;
  std::vector<Bar> bars_;
  bool has_reference_ = false;
  double reference_value_ = 0.0;
  std::string reference_label_;
};

}  // namespace vgrid::report
