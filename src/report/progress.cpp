#include "report/progress.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>

namespace vgrid::report {

namespace {
std::atomic<bool> g_progress_enabled{true};
}  // namespace

void set_progress_enabled(bool enabled) {
  g_progress_enabled.store(enabled, std::memory_order_relaxed);
}

bool progress_enabled() noexcept {
  return g_progress_enabled.load(std::memory_order_relaxed);
}

ProgressWriter::ProgressWriter() : interactive_(::isatty(2) == 1) {}

void ProgressWriter::update(const std::string& frame) {
  if (!progress_enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (interactive_) {
    // Redraw in place: carriage return + erase-to-end keeps the line
    // clean when the new frame is shorter than the old one.
    std::fprintf(stderr, "\r\033[K%s", frame.c_str());
    std::fflush(stderr);
    dirty_ = true;
  } else if (frame != last_frame_) {
    // Non-interactive (pipe/file): plain lines, deduplicated so an idle
    // poll loop cannot flood a CI log.
    std::fprintf(stderr, "%s\n", frame.c_str());
  }
  last_frame_ = frame;
}

void ProgressWriter::done() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (interactive_ && dirty_) {
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
    dirty_ = false;
  }
}

}  // namespace vgrid::report
