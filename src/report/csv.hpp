#pragma once
// CSV file output for the benches (every figure bench can dump its series
// for external plotting).

#include <string>

#include "report/table.hpp"

namespace vgrid::report {

/// Write table.csv() to `path`. Throws SystemError on failure.
void write_csv(const std::string& path, const Table& table);

}  // namespace vgrid::report
