#include "report/event_trace.hpp"

#include <algorithm>
#include <cerrno>
#include <fstream>

#include "report/chrome_trace.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace vgrid::report {

namespace {

using util::json_escape;

/// One event value (journal unit) in nanoseconds.
std::int64_t value_ns(const obs::EventLog::Config& config,
                      std::int64_t value) {
  if (config.unit == "us") return value * 1'000;
  if (config.unit == "ns") return value;
  return value * 1'000'000;  // "ms", the default
}

/// Retained traces, id-sorted, optionally filtered/bounded.
std::vector<const obs::Trace*> select_traces(const obs::EventLog& log,
                                             std::size_t max_traces,
                                             bool anomalous_only) {
  std::vector<const obs::Trace*> traces = log.traces();
  std::sort(traces.begin(), traces.end(),
            [](const obs::Trace* a, const obs::Trace* b) {
              return a->trace_id < b->trace_id;
            });
  if (anomalous_only) {
    std::erase_if(traces,
                  [](const obs::Trace* trace) { return !trace->anomalous; });
  }
  if (max_traces != 0 && traces.size() > max_traces) {
    traces.resize(max_traces);
  }
  return traces;
}

/// Strip a JSON array's brackets, returning the trimmed body (possibly
/// empty) — how two renderers' outputs splice into one trace file.
std::string array_body(const std::string& json) {
  const std::size_t open = json.find('[');
  const std::size_t close = json.rfind(']');
  if (open == std::string::npos || close == std::string::npos ||
      close <= open + 1) {
    return {};
  }
  std::string body = json.substr(open + 1, close - open - 1);
  while (!body.empty() && (body.front() == '\n' || body.front() == ' ')) {
    body.erase(body.begin());
  }
  while (!body.empty() && (body.back() == '\n' || body.back() == ' ')) {
    body.pop_back();
  }
  return body;
}

std::string fixed_milli(std::int64_t milli) {
  return util::format("%lld.%03lld", static_cast<long long>(milli / 1000),
                      static_cast<long long>(milli % 1000));
}

}  // namespace

std::string render_timelines(const obs::EventLog& log,
                             std::size_t max_traces, bool anomalous_only) {
  const std::vector<const obs::Trace*> traces =
      select_traces(log, max_traces, anomalous_only);
  std::string out = util::format(
      "=== workunit timelines (vgrid trace v1) ===\n"
      "traces shown=%llu retained=%llu closed=%llu anomalous=%llu "
      "evicted=%llu open=%llu unit=%s\n",
      static_cast<unsigned long long>(traces.size()),
      static_cast<unsigned long long>(log.retained_count()),
      static_cast<unsigned long long>(log.traces_closed()),
      static_cast<unsigned long long>(log.traces_anomalous()),
      static_cast<unsigned long long>(log.ring_churn()),
      static_cast<unsigned long long>(log.open_count()),
      log.config().unit.c_str());
  for (const obs::Trace* trace : traces) {
    out += util::format(
        "workunit %llu label=%s%s total=%lld queue_wait=%lld compute=%lld "
        "validation=%lld retry=%lld\n",
        static_cast<unsigned long long>(trace->trace_id),
        trace->label.empty() ? "-" : trace->label.c_str(),
        trace->anomalous ? " ANOMALOUS" : "",
        static_cast<long long>(trace->total()),
        static_cast<long long>(trace->components[0]),
        static_cast<long long>(trace->components[1]),
        static_cast<long long>(trace->components[2]),
        static_cast<long long>(trace->components[3]));
    for (const obs::Event& event : trace->events) {
      const char* kind = obs::event_kind_name(event.kind);
      std::string parent = event.parent == obs::kNoParent
                               ? std::string("-")
                               : util::format("e%u", event.parent);
      out += util::format("  e%-3u +%-9lld %-10s <- %-4s", event.seq,
                          static_cast<long long>(event.t_ns / 1'000'000),
                          kind, parent.c_str());
      const obs::Component component = obs::event_component(event.kind);
      if (component != obs::Component::kNone) {
        out += util::format(" %s+=%lld", obs::component_name(component),
                            static_cast<long long>(event.value));
      }
      if (event.aux != 0) {
        out += util::format(" aux=%lld", static_cast<long long>(event.aux));
      }
      out += "\n";
    }
  }
  return out;
}

std::string event_trace_json(const obs::EventLog& log,
                             std::size_t max_traces) {
  const std::vector<const obs::Trace*> traces =
      select_traces(log, max_traces, false);
  std::string out = "[\n";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) out += ",\n";
    first = false;
    out += event;
  };
  for (const obs::Trace* trace : traces) {
    const std::string tid =
        util::format("wu %llu%s",
                     static_cast<unsigned long long>(trace->trace_id),
                     trace->anomalous ? " (anomalous)" : "");
    for (const obs::Event& event : trace->events) {
      const double ts = static_cast<double>(event.t_ns) / 1e3;
      // Component-bearing events become duration slices ENDING at the
      // event: the dispatch slice is the queue wait that preceded it.
      const obs::Component component = obs::event_component(event.kind);
      if (component != obs::Component::kNone && event.value > 0) {
        const double dur =
            static_cast<double>(value_ns(log.config(), event.value)) / 1e3;
        emit(util::format(
            "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
            "\"pid\":\"lifecycle\",\"tid\":\"%s\"}",
            obs::component_name(component), ts - dur, dur,
            json_escape(tid).c_str()));
      }
      emit(util::format(
          "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":\"lifecycle\","
          "\"tid\":\"%s\",\"s\":\"t\",\"args\":{\"seq\":%u,\"value\":%lld,"
          "\"aux\":%lld}}",
          obs::event_kind_name(event.kind), ts, json_escape(tid).c_str(),
          event.seq, static_cast<long long>(event.value),
          static_cast<long long>(event.aux)));
      // Causal flow arrow parent -> event (Perfetto draws these as
      // curved arrows between the instants).
      if (event.parent != obs::kNoParent &&
          event.parent < trace->events.size()) {
        const obs::Event& parent = trace->events[event.parent];
        const unsigned long long flow_id =
            static_cast<unsigned long long>(trace->trace_id) * 4096ull +
            event.seq;
        emit(util::format(
            "{\"name\":\"causal\",\"cat\":\"lifecycle\",\"ph\":\"s\","
            "\"id\":%llu,\"ts\":%.3f,\"pid\":\"lifecycle\",\"tid\":\"%s\"}",
            flow_id, static_cast<double>(parent.t_ns) / 1e3,
            json_escape(tid).c_str()));
        emit(util::format(
            "{\"name\":\"causal\",\"cat\":\"lifecycle\",\"ph\":\"f\","
            "\"bp\":\"e\",\"id\":%llu,\"ts\":%.3f,\"pid\":\"lifecycle\","
            "\"tid\":\"%s\"}",
            flow_id, ts, json_escape(tid).c_str()));
      }
    }
  }
  out += "\n]\n";
  return out;
}

std::string combined_trace_json(
    const obs::EventLog& log, const std::vector<obs::SpanRecord>& spans,
    const std::vector<sim::TraceRecord>& records) {
  std::string out = "[\n";
  bool first = true;
  auto emit = [&](const std::string& body) {
    if (body.empty()) return;
    if (!first) out += ",\n";
    first = false;
    out += body;
  };
  emit(array_body(event_trace_json(log)));
  if (!spans.empty() || !records.empty()) {
    emit(array_body(obs_trace_json(spans, records)));
  }
  out += "\n]\n";
  return out;
}

void write_event_trace(const std::string& path, const obs::EventLog& log,
                       const std::vector<obs::SpanRecord>& spans,
                       const std::vector<sim::TraceRecord>& records) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw util::SystemError("write_event_trace: cannot open " + path, errno);
  }
  out << combined_trace_json(log, spans, records);
  if (!out) {
    throw util::SystemError("write_event_trace: write failed " + path,
                            errno);
  }
}

std::string format_tails(const obs::EventLog& log) {
  const obs::Registry& stats = log.stats();
  const obs::Histogram* turnaround = stats.find_histogram("trace.turnaround");
  std::string out = util::format(
      "=== tails decomposition (vgrid tails v1) ===\n"
      "traces closed=%llu anomalous=%llu evicted=%llu open=%llu unit=%s\n",
      static_cast<unsigned long long>(log.traces_closed()),
      static_cast<unsigned long long>(log.traces_anomalous()),
      static_cast<unsigned long long>(log.ring_churn()),
      static_cast<unsigned long long>(log.open_count()),
      log.config().unit.c_str());
  if (turnaround == nullptr || turnaround->count() == 0) {
    out += "turnaround count=0\n";
    return out;
  }
  const std::int64_t total_sum = turnaround->sum();
  out += util::format(
      "turnaround count=%llu sum=%lld mean=%lld p50=%lld p90=%lld "
      "p99=%lld max=%lld\n",
      static_cast<unsigned long long>(turnaround->count()),
      static_cast<long long>(total_sum),
      static_cast<long long>(total_sum /
                             static_cast<std::int64_t>(turnaround->count())),
      static_cast<long long>(turnaround->percentile(0.50)),
      static_cast<long long>(turnaround->percentile(0.90)),
      static_cast<long long>(turnaround->percentile(0.99)),
      static_cast<long long>(turnaround->max()));
  for (std::size_t i = 0; i < obs::kComponentCount; ++i) {
    const char* part =
        obs::component_name(static_cast<obs::Component>(i));
    const obs::Histogram* histogram =
        stats.find_histogram("trace.component", {{"part", part}});
    if (histogram == nullptr) continue;
    const std::int64_t share =
        total_sum > 0 ? histogram->sum() * 1000 / total_sum : 0;
    out += util::format(
        "component %-10s sum=%lld share_permille=%lld p50=%lld p90=%lld "
        "p99=%lld max=%lld\n",
        part, static_cast<long long>(histogram->sum()),
        static_cast<long long>(share),
        static_cast<long long>(histogram->percentile(0.50)),
        static_cast<long long>(histogram->percentile(0.90)),
        static_cast<long long>(histogram->percentile(0.99)),
        static_cast<long long>(histogram->count() > 0 ? histogram->max()
                                                      : 0));
  }
  // Wasted-work ledger: gigaops and journal-unit durations lost to
  // volunteer deaths and reissues, grouped by trace label (the VMM
  // profile for fleet traces, the workunit kind for grid traces).
  out += "wasted-work ledger\n";
  std::uint64_t total_deaths = 0;
  std::uint64_t total_reissues = 0;
  std::uint64_t total_wasted = 0;
  std::uint64_t total_ops_milli = 0;
  for (const obs::Labels& labels : stats.label_sets("trace.deaths")) {
    const auto value = [&](const char* name) -> std::uint64_t {
      const obs::Counter* counter = stats.find_counter(name, labels);
      return counter == nullptr ? 0 : counter->value();
    };
    const std::uint64_t deaths = value("trace.deaths");
    const std::uint64_t reissues = value("trace.reissues");
    const std::uint64_t wasted = value("trace.wasted_duration");
    const std::uint64_t ops_milli = value("trace.wasted_ops_milli");
    total_deaths += deaths;
    total_reissues += reissues;
    total_wasted += wasted;
    total_ops_milli += ops_milli;
    const auto label = labels.find("label");
    out += util::format(
        "  label %-12s deaths=%llu reissues=%llu wasted=%llu "
        "wasted_gigaops=%s\n",
        label != labels.end() && !label->second.empty()
            ? label->second.c_str()
            : "-",
        static_cast<unsigned long long>(deaths),
        static_cast<unsigned long long>(reissues),
        static_cast<unsigned long long>(wasted),
        fixed_milli(static_cast<std::int64_t>(ops_milli)).c_str());
  }
  out += util::format(
      "  total %-12s deaths=%llu reissues=%llu wasted=%llu "
      "wasted_gigaops=%s\n",
      "*", static_cast<unsigned long long>(total_deaths),
      static_cast<unsigned long long>(total_reissues),
      static_cast<unsigned long long>(total_wasted),
      fixed_milli(static_cast<std::int64_t>(total_ops_milli)).c_str());
  return out;
}

std::vector<std::string> reconcile_tails(const obs::EventLog& log,
                                         const obs::Histogram& turnaround) {
  std::vector<std::string> violations;
  const obs::Registry& stats = log.stats();
  const obs::Histogram* local = stats.find_histogram("trace.turnaround");
  if (local == nullptr) {
    if (turnaround.count() != 0) {
      violations.push_back("journal has no trace.turnaround histogram");
    }
    return violations;
  }
  if (local->count() != turnaround.count()) {
    violations.push_back(util::format(
        "turnaround count: journal %llu != reference %llu",
        static_cast<unsigned long long>(local->count()),
        static_cast<unsigned long long>(turnaround.count())));
  }
  if (local->sum() != turnaround.sum()) {
    violations.push_back(
        util::format("turnaround sum: journal %lld != reference %lld",
                     static_cast<long long>(local->sum()),
                     static_cast<long long>(turnaround.sum())));
  }
  if (local->count() != 0 && turnaround.count() != 0 &&
      (local->min() != turnaround.min() ||
       local->max() != turnaround.max())) {
    violations.push_back(util::format(
        "turnaround extremes: journal [%lld, %lld] != reference "
        "[%lld, %lld]",
        static_cast<long long>(local->min()),
        static_cast<long long>(local->max()),
        static_cast<long long>(turnaround.min()),
        static_cast<long long>(turnaround.max())));
  }
  std::int64_t component_sum = 0;
  for (std::size_t i = 0; i < obs::kComponentCount; ++i) {
    const char* part =
        obs::component_name(static_cast<obs::Component>(i));
    const obs::Histogram* histogram =
        stats.find_histogram("trace.component", {{"part", part}});
    if (histogram == nullptr) {
      violations.push_back(util::format("missing component histogram %s",
                                        part));
      continue;
    }
    // Every close observes all four components (zeros included), so
    // each component's count must equal the turnaround count.
    if (histogram->count() != local->count()) {
      violations.push_back(util::format(
          "component %s count %llu != turnaround count %llu", part,
          static_cast<unsigned long long>(histogram->count()),
          static_cast<unsigned long long>(local->count())));
    }
    component_sum += histogram->sum();
  }
  if (component_sum != local->sum()) {
    violations.push_back(util::format(
        "component sums %lld do not add up to turnaround sum %lld",
        static_cast<long long>(component_sum),
        static_cast<long long>(local->sum())));
  }
  return violations;
}

}  // namespace vgrid::report
