// Determinism regression suite (ARCHITECTURE.md §5, "Correctness
// tooling"): EventQueue FIFO tie-break stability under simultaneous
// events, the VGRID_AUDIT runtime-invariant machinery, and same-seed /
// identical-trace checks for one guest-performance and one host-impact
// experiment — the in-tree counterpart of `vgrid determinism-audit`.

#include <algorithm>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/guest_perf.hpp"
#include "core/host_impact.hpp"
#include "core/runner.hpp"
#include "core/testbed.hpp"
#include "sim/event_queue.hpp"
#include "util/audit.hpp"
#include "util/error.hpp"
#include "vmm/profile.hpp"
#include "workloads/sevenzip/bench7z.hpp"

namespace vgrid {
namespace {

// ---- EventQueue FIFO tie-break ---------------------------------------------

TEST(EventQueueFifo, SimultaneousEventsFireInInsertionOrder) {
  sim::EventQueue queue;
  std::vector<int> order;
  constexpr sim::SimTime kWhen = 1'000;
  for (int i = 0; i < 64; ++i) {
    queue.push(kWhen, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) {
    auto fired = queue.pop();
    fired.callback();
  }
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueFifo, InterleavedTimesStillFifoWithinEachInstant) {
  sim::EventQueue queue;
  std::vector<std::pair<sim::SimTime, int>> order;
  // Push out of time order, several events per instant.
  const sim::SimTime times[] = {30, 10, 20, 10, 30, 20, 10};
  int tag = 0;
  for (const sim::SimTime when : times) {
    const int this_tag = tag++;
    queue.push(when, [&order, when, this_tag] {
      order.emplace_back(when, this_tag);
    });
  }
  while (!queue.empty()) queue.pop().callback();
  const std::vector<std::pair<sim::SimTime, int>> expected = {
      {10, 1}, {10, 3}, {10, 6}, {20, 2}, {20, 5}, {30, 0}, {30, 4}};
  EXPECT_EQ(order, expected);
}

TEST(EventQueueFifo, CancellationPreservesOrderOfSurvivors) {
  sim::EventQueue queue;
  std::vector<int> order;
  constexpr sim::SimTime kWhen = 5;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(queue.push(kWhen, [&order, i] { order.push_back(i); }));
  }
  // Cancel the evens; the odds must still fire in insertion order.
  for (int i = 0; i < 10; i += 2) {
    EXPECT_TRUE(queue.cancel(ids[static_cast<size_t>(i)]));
  }
  EXPECT_FALSE(queue.cancel(ids[0]));  // double-cancel reports false
  while (!queue.empty()) queue.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(EventQueueFifo, ReplayedScheduleIsIdentical) {
  // Build the same randomized schedule twice from the same seed; the pop
  // sequence (time, relative insertion index) must match exactly.
  auto run = [] {
    util::Xoshiro256 rng(4242);
    sim::EventQueue queue;
    std::vector<std::pair<sim::SimTime, int>> order;
    for (int i = 0; i < 200; ++i) {
      const auto when = static_cast<sim::SimTime>(rng.uniform_int(0, 15));
      queue.push(when, [&order, when, i] { order.emplace_back(when, i); });
    }
    while (!queue.empty()) queue.pop().callback();
    return order;
  };
  EXPECT_EQ(run(), run());
}

// ---- VGRID_AUDIT machinery --------------------------------------------------

#if defined(VGRID_AUDITS_ENABLED)
TEST(Audit, FailingConditionThrowsAuditError) {
  EXPECT_THROW(VGRID_AUDIT(1 == 2, "math broke: %d", 42), util::AuditError);
}

TEST(Audit, PassingConditionIsSilent) {
  EXPECT_NO_THROW(VGRID_AUDIT(2 + 2 == 4, "unused"));
}

TEST(Audit, MessageCarriesFileExpressionAndDetail) {
  try {
    VGRID_AUDIT(false, "detail %s %d", "xyz", 7);
    FAIL() << "VGRID_AUDIT did not throw";
  } catch (const util::AuditError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("detail xyz 7"), std::string::npos);
    EXPECT_NE(what.find("test_determinism.cpp"), std::string::npos);
  }
}
#else
TEST(Audit, CompiledOutWhenDisabled) {
  // Must not evaluate the message arguments or the condition's side cost.
  EXPECT_NO_THROW(VGRID_AUDIT(false, "never formatted"));
}
#endif

// ---- same-seed identical-trace regressions ---------------------------------

core::RunnerConfig tiny_runner() {
  core::RunnerConfig config;
  config.repetitions = 2;
  return config;
}

std::string captured_guest_perf_trace() {
  std::string sink;
  core::set_trace_capture(&sink);
  core::GuestPerfExperiment experiment(
      [] {
        return workloads::SevenZipBench(workloads::Bench7zConfig{})
            .make_program();
      },
      tiny_runner());
  const double slowdown = experiment.slowdown(vmm::profiles::vmplayer());
  core::set_trace_capture(nullptr);
  EXPECT_GT(slowdown, 1.0);
  EXPECT_FALSE(sink.empty());
  return sink;
}

TEST(SameSeedTrace, GuestPerfRunsAreByteIdentical) {
  const std::string first = captured_guest_perf_trace();
  const std::string second = captured_guest_perf_trace();
  ASSERT_EQ(first.size(), second.size());
  EXPECT_TRUE(first == second)
      << "same-seed guest-perf traces diverged (first difference at byte "
      << std::distance(first.begin(),
                       std::mismatch(first.begin(), first.end(),
                                     second.begin())
                           .first)
      << ")";
}

std::string captured_host_impact_trace() {
  std::string sink;
  core::set_trace_capture(&sink);
  core::HostImpactConfig config;
  config.runner = tiny_runner();
  core::HostImpactExperiment experiment(config);
  const vmm::VmmProfile profile = vmm::profiles::vmplayer();
  const auto metrics = experiment.run_7z(2, &profile);
  core::set_trace_capture(nullptr);
  EXPECT_GT(metrics.cpu_percent, 0.0);
  EXPECT_FALSE(sink.empty());
  return sink;
}

TEST(SameSeedTrace, HostImpactRunsAreByteIdentical) {
  const std::string first = captured_host_impact_trace();
  const std::string second = captured_host_impact_trace();
  ASSERT_EQ(first.size(), second.size());
  EXPECT_TRUE(first == second)
      << "same-seed host-impact traces diverged (first difference at byte "
      << std::distance(first.begin(),
                       std::mismatch(first.begin(), first.end(),
                                     second.begin())
                           .first)
      << ")";
}

}  // namespace
}  // namespace vgrid
