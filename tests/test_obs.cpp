// Tests for vgrid::obs — the deterministic metrics layer — and for the
// metrics_diff snapshot parser/comparator: instrument semantics, label
// ordering, merge rules, snapshot round-trips, the TaskPool jobs-invariance
// contract, and the sim::Tracer record cap.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/task_pool.hpp"
#include "metrics_diff/metrics_diff.hpp"
#include "obs/registry.hpp"
#include "sim/trace.hpp"
#include "util/error.hpp"

namespace vgrid::obs {
namespace {

TEST(Counter, StartsAtZeroAndAdds) {
  Registry registry;
  Counter& counter = registry.counter("test.events");
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, UpdateMaxKeepsHighWater) {
  Registry registry;
  Gauge& gauge = registry.gauge("test.depth");
  EXPECT_FALSE(gauge.ever_set());
  gauge.update_max(5);
  gauge.update_max(3);
  EXPECT_EQ(gauge.value(), 5);
  EXPECT_TRUE(gauge.ever_set());
  gauge.update_max(9);
  EXPECT_EQ(gauge.value(), 9);
}

TEST(Histogram, BucketBoundsAreInclusiveUpperBounds) {
  Registry registry;
  Histogram& histogram = registry.histogram("test.lat", {10, 20});
  histogram.observe(10);  // == first bound -> bucket 0
  histogram.observe(11);  // just above -> bucket 1
  histogram.observe(20);  // == second bound -> bucket 1
  histogram.observe(21);  // above all bounds -> +Inf bucket
  EXPECT_EQ(histogram.bucket_count(0), 1u);
  EXPECT_EQ(histogram.bucket_count(1), 2u);
  EXPECT_EQ(histogram.bucket_count(2), 1u);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.sum(), 62);
  EXPECT_EQ(histogram.min(), 10);
  EXPECT_EQ(histogram.max(), 21);
}

TEST(Histogram, RejectsNonAscendingBounds) {
  Registry registry;
  EXPECT_THROW(registry.histogram("bad.desc", {20, 10}), util::ConfigError);
  EXPECT_THROW(registry.histogram("bad.dup", {10, 10}), util::ConfigError);
}

TEST(Registry, TypeAndShapeMismatchesThrow) {
  Registry registry;
  registry.counter("test.a");
  EXPECT_THROW(registry.gauge("test.a"), util::ConfigError);
  EXPECT_THROW(registry.histogram("test.a", {1}), util::ConfigError);
  registry.gauge("test.g", {}, Gauge::Agg::kMax);
  EXPECT_THROW(registry.gauge("test.g", {}, Gauge::Agg::kSum),
               util::ConfigError);
  registry.histogram("test.h", {1, 2});
  EXPECT_THROW(registry.histogram("test.h", {1, 3}), util::ConfigError);
  // Same name with different labels is a distinct instrument: no throw.
  registry.gauge("test.a", {{"shard", "0"}});
}

TEST(Registry, SnapshotIsSortedAndInsertionOrderFree) {
  Registry forward;
  forward.counter("alpha.z");
  forward.counter("alpha.a", {{"op", "write"}});
  forward.counter("alpha.a", {{"op", "read"}});
  Registry backward;
  backward.counter("alpha.a", {{"op", "read"}});
  backward.counter("alpha.a", {{"op", "write"}});
  backward.counter("alpha.z");
  EXPECT_EQ(forward.snapshot_json(), backward.snapshot_json());
  const std::string snapshot = forward.snapshot_json();
  EXPECT_LT(snapshot.find("\"op\":\"read\""),
            snapshot.find("\"op\":\"write\""));
  EXPECT_LT(snapshot.find("alpha.a"), snapshot.find("alpha.z"));
}

TEST(Registry, MergeAppliesGaugeAggregationPolicies) {
  Registry target;
  target.gauge("g.max", {}, Gauge::Agg::kMax).set(5);
  target.gauge("g.min", {}, Gauge::Agg::kMin).set(5);
  target.gauge("g.last", {}, Gauge::Agg::kLast).set(5);
  target.gauge("g.sum", {}, Gauge::Agg::kSum).set(5);
  target.gauge("g.keep", {}, Gauge::Agg::kLast).set(7);

  Registry source;
  source.gauge("g.max", {}, Gauge::Agg::kMax).set(3);
  source.gauge("g.min", {}, Gauge::Agg::kMin).set(3);
  source.gauge("g.last", {}, Gauge::Agg::kLast).set(3);
  source.gauge("g.sum", {}, Gauge::Agg::kSum).set(3);
  source.gauge("g.keep", {}, Gauge::Agg::kLast);  // never set

  target.merge_from(source);
  EXPECT_EQ(target.gauge("g.max", {}, Gauge::Agg::kMax).value(), 5);
  EXPECT_EQ(target.gauge("g.min", {}, Gauge::Agg::kMin).value(), 3);
  EXPECT_EQ(target.gauge("g.last", {}, Gauge::Agg::kLast).value(), 3);
  EXPECT_EQ(target.gauge("g.sum", {}, Gauge::Agg::kSum).value(), 8);
  // A never-set source gauge must not clobber the destination value.
  EXPECT_EQ(target.gauge("g.keep", {}, Gauge::Agg::kLast).value(), 7);
}

TEST(Registry, MergeCombinesHistogramsAndCounters) {
  Registry target;
  target.counter("c").add(10);
  target.histogram("h", {100}).observe(50);

  Registry source;
  source.counter("c").add(32);
  Histogram& histogram = source.histogram("h", {100});
  histogram.observe(7);
  histogram.observe(500);

  target.merge_from(source);
  EXPECT_EQ(target.counter("c").value(), 42u);
  Histogram& merged = target.histogram("h", {100});
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_EQ(merged.sum(), 557);
  EXPECT_EQ(merged.min(), 7);
  EXPECT_EQ(merged.max(), 500);
  EXPECT_EQ(merged.bucket_count(0), 2u);
  EXPECT_EQ(merged.bucket_count(1), 1u);
}

TEST(Histogram, PercentilesInterpolateInsideBuckets) {
  Registry registry;
  Histogram& histogram = registry.histogram("pct.lat", {100, 200, 400});
  // 100 observations spread 0..99: all land in the first bucket, which
  // spans [min=0, bound=100] for interpolation.
  for (std::int64_t v = 0; v < 100; ++v) histogram.observe(v);
  EXPECT_EQ(histogram.percentile(0.50), 50);
  EXPECT_EQ(histogram.percentile(0.90), 90);
  // Extremes clamp to the tracked min/max.
  EXPECT_EQ(histogram.percentile(0.0), 0);
  EXPECT_EQ(histogram.percentile(1.0), 99);
}

TEST(Histogram, PercentileTailUsesTrackedMaxInInfBucket) {
  Registry registry;
  Histogram& histogram = registry.histogram("pct.tail", {10});
  for (int i = 0; i < 99; ++i) histogram.observe(5);
  histogram.observe(5000);  // lone outlier in the +Inf bucket
  // p99 rank (99) still lands in the first bucket; p100 reaches the
  // outlier but can never exceed the tracked max.
  EXPECT_LE(histogram.percentile(0.99), 10);
  EXPECT_EQ(histogram.percentile(1.0), 5000);
}

TEST(Histogram, PercentileOfEmptyHistogramIsZero) {
  Registry registry;
  Histogram& histogram = registry.histogram("pct.empty", {10});
  EXPECT_EQ(histogram.percentile(0.5), 0);
}

TEST(Registry, SnapshotCarriesPercentilesThroughDiffParser) {
  Registry registry;
  Histogram& histogram = registry.histogram("pct.snap", {100});
  for (std::int64_t v = 1; v <= 10; ++v) histogram.observe(v * 10);
  const auto snapshot = tools::parse_snapshot(registry.snapshot_json());
  ASSERT_EQ(snapshot.instruments.size(), 1u);
  EXPECT_EQ(snapshot.instruments[0].p50, histogram.percentile(0.50));
  EXPECT_EQ(snapshot.instruments[0].p90, histogram.percentile(0.90));
  EXPECT_EQ(snapshot.instruments[0].p99, histogram.percentile(0.99));

  // A tail shift beyond the band is called out as a p-line difference.
  Registry other;
  Histogram& shifted = other.histogram("pct.snap", {100});
  for (std::int64_t v = 1; v <= 10; ++v) shifted.observe(v * 10 + 40);
  const auto moved = tools::parse_snapshot(other.snapshot_json());
  const auto differences =
      tools::diff_snapshots(snapshot, moved, {/*abs_tol=*/0.0,
                                              /*rel_tol=*/0.0});
  bool p90_flagged = false;
  for (const auto& difference : differences) {
    if (difference.detail.rfind("p90", 0) == 0) p90_flagged = true;
  }
  EXPECT_TRUE(p90_flagged);
}

TEST(Registry, PrometheusExportsQuantileSeries) {
  Registry registry;
  Histogram& histogram = registry.histogram("quant.lat", {100});
  for (std::int64_t v = 0; v < 100; ++v) histogram.observe(v);
  const std::string text = registry.snapshot_prometheus();
  EXPECT_NE(text.find("vgrid_quant_lat{quantile=\"0.5\"} 50"),
            std::string::npos);
  EXPECT_NE(text.find("vgrid_quant_lat{quantile=\"0.9\"} 90"),
            std::string::npos);
  EXPECT_NE(text.find("vgrid_quant_lat{quantile=\"0.99\"} 99"),
            std::string::npos);
}

TEST(Registry, SnapshotRoundTripsThroughMetricsDiffParser) {
  Registry registry;
  registry.counter("round.trip", {{"path", "say \"hi\"\\n"}}).add(17);
  registry.gauge("round.gauge", {}, Gauge::Agg::kSum).set(-4);
  registry.histogram("round.hist", {10, 100}).observe(42);

  const auto snapshot = tools::parse_snapshot(registry.snapshot_json());
  EXPECT_EQ(snapshot.version, 1);
  ASSERT_EQ(snapshot.instruments.size(), 3u);
  // Sorted order: round.gauge, round.hist, round.trip.
  EXPECT_EQ(snapshot.instruments[0].name, "round.gauge");
  EXPECT_EQ(snapshot.instruments[0].value, -4);
  EXPECT_EQ(snapshot.instruments[0].agg, "sum");
  EXPECT_TRUE(snapshot.instruments[0].set);
  EXPECT_EQ(snapshot.instruments[1].name, "round.hist");
  EXPECT_EQ(snapshot.instruments[1].bounds,
            (std::vector<std::int64_t>{10, 100}));
  EXPECT_EQ(snapshot.instruments[1].counts,
            (std::vector<std::uint64_t>{0, 1, 0}));
  EXPECT_EQ(snapshot.instruments[2].name, "round.trip");
  // The escaped label survived the JSON round-trip intact.
  EXPECT_EQ(snapshot.instruments[2].labels.at("path"), "say \"hi\"\\n");
  EXPECT_EQ(snapshot.instruments[2].value, 17);

  const auto differences = tools::diff_snapshots(snapshot, snapshot, {});
  EXPECT_TRUE(differences.empty());
}

TEST(Registry, DefaultsCoverAllSixSubsystems) {
  Registry registry;
  register_defaults(registry);
  const auto snapshot = tools::parse_snapshot(registry.snapshot_json());
  const char* subsystems[] = {"sim.", "os.", "hw.", "vmm.", "guest.",
                              "grid."};
  for (const char* prefix : subsystems) {
    int count = 0;
    for (const auto& instrument : snapshot.instruments) {
      if (instrument.name.rfind(prefix, 0) == 0) ++count;
    }
    EXPECT_GE(count, 2) << "subsystem " << prefix
                        << " must pre-register at least two instruments";
  }
}

TEST(Registry, PrometheusExportsTypedSeries) {
  Registry registry;
  registry.counter("prom.events", {{"kind", "a"}}).add(3);
  registry.histogram("prom.lat", {10}).observe(4);
  const std::string text = registry.snapshot_prometheus();
  EXPECT_NE(text.find("# TYPE vgrid_prom_events counter"),
            std::string::npos);
  EXPECT_NE(text.find("vgrid_prom_events{kind=\"a\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("vgrid_prom_lat_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("vgrid_prom_lat_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("vgrid_prom_lat_count 1"), std::string::npos);
}

TEST(ScopedSpan, RecordsWallAndSimTimeIntoCurrentRegistry) {
  Registry registry;
  {
    ScopedRegistry scope(&registry);
    ScopedSpan span("unit.work", [] { return std::int64_t{42}; });
  }
  const auto spans = registry.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "unit.work");
  EXPECT_TRUE(spans[0].has_sim_time);
  EXPECT_EQ(spans[0].sim_start_ns, 42);
  EXPECT_EQ(spans[0].sim_end_ns, 42);
  EXPECT_GE(spans[0].wall_end_ns, spans[0].wall_start_ns);
  // Spans are wall-clock observability and stay out of the deterministic
  // snapshot.
  EXPECT_EQ(registry.snapshot_json().find("unit.work"), std::string::npos);
}

TEST(AmbientRegistry, MaybeHelpersAreNullWithoutRegistry) {
  ASSERT_EQ(current(), nullptr);
  EXPECT_EQ(maybe_counter("off.counter"), nullptr);
  EXPECT_EQ(maybe_gauge("off.gauge"), nullptr);
  EXPECT_EQ(maybe_histogram("off.hist", {1}), nullptr);
  Registry registry;
  {
    ScopedRegistry scope(&registry);
    EXPECT_NE(maybe_counter("on.counter"), nullptr);
  }
  EXPECT_EQ(current(), nullptr);
}

/// The tentpole contract: metrics recorded inside TaskPool tasks merge in
/// task order, so the snapshot is byte-identical for any --jobs value.
std::string pooled_snapshot(int jobs) {
  Registry registry;
  ScopedRegistry scope(&registry);
  core::TaskPool pool(jobs);
  pool.run(32, [](std::size_t i) {
    maybe_counter("pool.work")->add(i + 1);
    maybe_gauge("pool.high_water")->update_max(static_cast<std::int64_t>(i));
    maybe_gauge("pool.total", {}, Gauge::Agg::kSum)
        ->set(static_cast<std::int64_t>(i));
    maybe_histogram("pool.lat", {8, 16})
        ->observe(static_cast<std::int64_t>(i));
  });
  return registry.snapshot_json();
}

TEST(TaskPool, SnapshotIsByteIdenticalAcrossJobCounts) {
  const std::string serial = pooled_snapshot(1);
  const std::string parallel = pooled_snapshot(8);
  EXPECT_EQ(serial, parallel);
  const auto snapshot = tools::parse_snapshot(serial);
  ASSERT_EQ(snapshot.instruments.size(), 4u);
  EXPECT_EQ(snapshot.instruments[1].name, "pool.lat");
  EXPECT_EQ(snapshot.instruments[1].count, 32u);
  EXPECT_EQ(snapshot.instruments[3].name, "pool.work");
  EXPECT_EQ(snapshot.instruments[3].value, 32 * 33 / 2);
}

TEST(Tracer, RecordCapBoundsRetentionAndCountsDrops) {
  Registry registry;
  ScopedRegistry scope(&registry);
  sim::Tracer tracer;  // resolves its obs counters from `registry`
  tracer.enable(true);
  tracer.set_record_cap(3);
  for (int i = 0; i < 5; ++i) {
    tracer.record(sim::SimTime{i}, sim::TraceKind::kCustom, "t");
  }
  EXPECT_EQ(tracer.records().size(), 3u);
  EXPECT_EQ(tracer.dropped(), 2u);
  EXPECT_EQ(registry.counter("sim.trace.records").value(), 5u);
  EXPECT_EQ(registry.counter("sim.trace.records_dropped").value(), 2u);
  tracer.clear();
  EXPECT_EQ(tracer.dropped(), 0u);
  tracer.record(sim::SimTime{9}, sim::TraceKind::kCustom, "t");
  EXPECT_EQ(tracer.records().size(), 1u);
}

TEST(MetricsDiff, ToleranceBandFormula) {
  tools::DiffOptions exact;
  EXPECT_TRUE(tools::within_tolerance(10, 10, exact));
  EXPECT_FALSE(tools::within_tolerance(10, 11, exact));
  tools::DiffOptions abs;
  abs.abs_tol = 1.0;
  EXPECT_TRUE(tools::within_tolerance(10, 11, abs));
  EXPECT_FALSE(tools::within_tolerance(10, 12, abs));
  tools::DiffOptions rel;
  rel.rel_tol = 0.1;
  EXPECT_TRUE(tools::within_tolerance(100, 109, rel));
  EXPECT_FALSE(tools::within_tolerance(100, 120, rel));
}

TEST(MetricsDiff, FlagsValueAndPresenceDifferences) {
  Registry a;
  a.counter("diff.c").add(100);
  a.counter("diff.only_a").add(1);
  Registry b;
  b.counter("diff.c").add(103);

  const auto left = tools::parse_snapshot(a.snapshot_json());
  const auto right = tools::parse_snapshot(b.snapshot_json());
  const auto exact = tools::diff_snapshots(left, right, {});
  ASSERT_EQ(exact.size(), 2u);
  EXPECT_EQ(exact[0].instrument, "diff.c");
  EXPECT_EQ(exact[1].instrument, "diff.only_a");
  EXPECT_EQ(exact[1].detail, "only in first snapshot");

  tools::DiffOptions band;
  band.rel_tol = 0.05;
  const auto tolerant = tools::diff_snapshots(left, right, band);
  ASSERT_EQ(tolerant.size(), 1u);  // the value now fits the band
  EXPECT_EQ(tolerant[0].instrument, "diff.only_a");
}

TEST(MetricsDiff, ParserRejectsUnknownVersion) {
  EXPECT_THROW(
      tools::parse_snapshot("{\n\"vgrid_metrics_version\":2,\n"
                            "\"instruments\":[\n]\n}\n"),
      std::runtime_error);
  EXPECT_THROW(tools::parse_snapshot(""), std::runtime_error);
}

}  // namespace
}  // namespace vgrid::obs
