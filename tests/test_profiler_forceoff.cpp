// Compiled with VGRID_PROFILE_FORCE_OFF (see tests/CMakeLists.txt): the
// PROF_SCOPE below must expand to `static_cast<void>(0)` — the caller
// asserts the installed profiler stays empty.

#include "obs/profiler.hpp"

namespace vgrid::obs::testing {

void run_force_off_scope() {
  PROF_SCOPE("forceoff.should_not_exist");
}

}  // namespace vgrid::obs::testing
