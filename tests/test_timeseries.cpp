// Tests for obs::Timeseries — the time-resolved leg of the observability
// quartet — and for the timeseries_diff export parser/comparator: track
// semantics (counter deltas, gauge levels, histogram percentile tracks),
// ring retention with eviction-proof aggregates, the TaskPool
// jobs-invariance contract, the seeded dropped-merge mutation, and the
// tolerance-band diff.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/task_pool.hpp"
#include "obs/registry.hpp"
#include "obs/timeseries.hpp"
#include "timeseries_diff/timeseries_diff.hpp"

namespace vgrid::obs {
namespace {

// --- track semantics ---------------------------------------------------------

TEST(TimeseriesTracks, CountersRecordPerIntervalDeltas) {
  Registry registry;
  Counter& counter = registry.counter("test.events");
  Timeseries series;

  series.sample(registry, 0);  // baseline: raw 0, delta 0
  counter.add(5);
  series.sample(registry, 100);
  counter.add(2);
  series.sample(registry, 200);
  series.sample(registry, 300);  // no traffic: delta 0

  const Timeseries::Series* track =
      series.find_series("test.events", {}, TrackKind::kCounterDelta);
  ASSERT_NE(track, nullptr);
  ASSERT_EQ(track->points.size(), 4u);
  EXPECT_EQ(track->points[0].value, 0);
  EXPECT_EQ(track->points[1].value, 5);
  EXPECT_EQ(track->points[2].value, 2);
  EXPECT_EQ(track->points[3].value, 0);
  EXPECT_EQ(track->points[1].t_ms, 100);
  EXPECT_EQ(track->max_value, 5);
}

TEST(TimeseriesTracks, GaugesRecordLevels) {
  Registry registry;
  Gauge& gauge = registry.gauge("test.depth", {}, Gauge::Agg::kLast);
  Timeseries series;

  gauge.set(7);
  series.sample(registry, 0);
  gauge.set(3);
  series.sample(registry, 100);

  const Timeseries::Series* track =
      series.find_series("test.depth", {}, TrackKind::kGaugeLevel);
  ASSERT_NE(track, nullptr);
  ASSERT_EQ(track->points.size(), 2u);
  EXPECT_EQ(track->points[0].value, 7);
  EXPECT_EQ(track->points[1].value, 3);  // a level, not a running max
  EXPECT_EQ(track->last_value, 3);
}

TEST(TimeseriesTracks, HistogramsRecordPercentileTracks) {
  Registry registry;
  Histogram& histogram =
      registry.histogram("test.latency", {10, 100, 1000});
  Timeseries series;

  for (int i = 0; i < 99; ++i) histogram.observe(5);
  histogram.observe(500);
  series.sample(registry, 100);

  const Timeseries::Series* p50 =
      series.find_series("test.latency", {}, TrackKind::kHistogramP50);
  const Timeseries::Series* p99 =
      series.find_series("test.latency", {}, TrackKind::kHistogramP99);
  ASSERT_NE(p50, nullptr);
  ASSERT_NE(p99, nullptr);
  ASSERT_EQ(p50->points.size(), 1u);
  // The p50 lives in the first bucket (<= 10); the tail observation pulls
  // the p99 track above it.
  EXPECT_LE(p50->points[0].value, 10);
  EXPECT_GT(p99->points[0].value, p50->points[0].value);
}

TEST(TimeseriesTracks, EmptyRegistryScrapeCountsButRecordsNothing) {
  Registry registry;
  Timeseries series;
  series.sample(registry, 0);
  series.sample(registry, 100);
  EXPECT_EQ(series.samples_taken(), 2u);
  EXPECT_EQ(series.series_count(), 0u);
  EXPECT_EQ(series.points_recorded(), 0u);
  // The export still parses: header only, no series lines.
  const auto parsed = tools::parse_timeseries(series.render_json());
  EXPECT_EQ(parsed.samples, 2u);
  EXPECT_TRUE(parsed.series.empty());
}

// --- ring retention ----------------------------------------------------------

TEST(TimeseriesRing, KeepsNewestPointsAggregatesSurviveEviction) {
  Registry registry;
  Gauge& gauge = registry.gauge("test.level", {}, Gauge::Agg::kLast);
  Timeseries series(Timeseries::Config{.interval_ms = 100,
                                       .ring_capacity = 4});
  for (int i = 1; i <= 10; ++i) {
    gauge.set(i);
    series.sample(registry, i * 100);
  }

  const Timeseries::Series* track =
      series.find_series("test.level", {}, TrackKind::kGaugeLevel);
  ASSERT_NE(track, nullptr);
  // The ring holds only the newest 4 points...
  ASSERT_EQ(track->points.size(), 4u);
  EXPECT_EQ(track->points.front().value, 7);
  EXPECT_EQ(track->points.back().value, 10);
  EXPECT_EQ(track->evicted, 6u);
  EXPECT_EQ(series.ring_churn(), 6u);
  // ...but the aggregates cover every point ever appended.
  EXPECT_EQ(track->total_points, 10u);
  EXPECT_EQ(track->min_value, 1);
  EXPECT_EQ(track->max_value, 10);
  EXPECT_EQ(track->last_value, 10);
}

// --- merge / jobs invariance -------------------------------------------------

/// Renders the export of `tasks` per-task samplers routed through a
/// TaskPool with the given fan-out. Each task scrapes its own private
/// registry into the ambient (per-task) sub-sampler, so the merged result
/// must be byte-identical for any jobs value.
std::string pooled_export(int jobs, std::size_t tasks) {
  Timeseries parent;
  ScopedTimeseries scope(&parent);
  core::TaskPool pool(jobs);
  pool.run(tasks, [](std::size_t index) {
    Registry registry;
    Counter& counter = registry.counter(
        "task.events", {{"task", std::to_string(index)}});
    Timeseries* sink = current_timeseries();
    ASSERT_NE(sink, nullptr);
    sink->sample(registry, 0);
    counter.add(index + 1);
    sink->sample(registry, 100);
  });
  return parent.render_json();
}

TEST(TimeseriesMerge, TaskPoolExportIsJobsInvariant) {
  const std::string serial = pooled_export(1, 8);
  const std::string parallel = pooled_export(8, 8);
  EXPECT_EQ(serial, parallel);
  // And the merged document accounts for every sub-sampler's activity.
  const auto parsed = tools::parse_timeseries(serial);
  EXPECT_EQ(parsed.samples, 16u);          // 8 tasks x 2 scrapes
  EXPECT_EQ(parsed.series.size(), 8u);     // one labelled track per task
}

TEST(TimeseriesMerge, MergeReplaysRingRetention) {
  Registry registry;
  Gauge& gauge = registry.gauge("test.level", {}, Gauge::Agg::kLast);
  Timeseries sub(Timeseries::Config{.interval_ms = 100, .ring_capacity = 0});
  for (int i = 1; i <= 6; ++i) {
    gauge.set(i);
    sub.sample(registry, i * 100);
  }
  Timeseries parent(Timeseries::Config{.interval_ms = 100,
                                       .ring_capacity = 4});
  parent.merge_from(sub);
  const Timeseries::Series* track =
      parent.find_series("test.level", {}, TrackKind::kGaugeLevel);
  ASSERT_NE(track, nullptr);
  // The parent's tighter ring applies during the replayed appends.
  ASSERT_EQ(track->points.size(), 4u);
  EXPECT_EQ(track->points.front().value, 3);
  EXPECT_EQ(track->total_points, 6u);
  EXPECT_EQ(track->min_value, 1);
}

TEST(TimeseriesMerge, InjectedDropSkipsExactlyOneMerge) {
  Registry registry;
  registry.counter("test.events").add(3);
  Timeseries sub;
  sub.sample(registry, 100);

  Timeseries parent;
  parent.inject_dropped_merge_for_test();
  parent.merge_from(sub);  // silently dropped
  EXPECT_EQ(parent.samples_taken(), 0u);
  EXPECT_EQ(parent.series_count(), 0u);
  parent.merge_from(sub);  // the mutation is one-shot
  EXPECT_EQ(parent.samples_taken(), 1u);
  EXPECT_EQ(parent.series_count(), 1u);
}

// --- timeseries_diff ---------------------------------------------------------

/// A two-sample export with one counter track, value `delta` at t=100.
std::string small_export(std::uint64_t delta) {
  Registry registry;
  Counter& counter = registry.counter("test.events");
  Timeseries series;
  series.sample(registry, 0);
  counter.add(delta);
  series.sample(registry, 100);
  return series.render_json();
}

TEST(TimeseriesDiff, RoundTripsTheCanonicalExport) {
  const auto parsed = tools::parse_timeseries(small_export(5));
  EXPECT_EQ(parsed.version, 1);
  EXPECT_EQ(parsed.interval_ms, 100);
  EXPECT_EQ(parsed.samples, 2u);
  ASSERT_EQ(parsed.series.size(), 1u);
  EXPECT_EQ(parsed.series[0].name, "test.events");
  EXPECT_EQ(parsed.series[0].track, "delta");
  ASSERT_EQ(parsed.series[0].points.size(), 2u);
  EXPECT_EQ(parsed.series[0].points[1].first, 100);
  EXPECT_EQ(parsed.series[0].points[1].second, 5);
}

TEST(TimeseriesDiff, IdenticalExportsAgreeAtZeroTolerance) {
  const auto a = tools::parse_timeseries(small_export(5));
  const auto b = tools::parse_timeseries(small_export(5));
  EXPECT_TRUE(tools::diff_timeseries(a, b, {}).empty());
}

TEST(TimeseriesDiff, ValueDriftIsFlaggedThenAbsorbedByTheBand) {
  const auto a = tools::parse_timeseries(small_export(5));
  const auto b = tools::parse_timeseries(small_export(7));
  const auto exact = tools::diff_timeseries(a, b, {});
  ASSERT_FALSE(exact.empty());
  EXPECT_EQ(exact[0].series, "test.events/delta");

  tools::TimeseriesDiffOptions band;
  band.abs_tol = 2.0;
  EXPECT_TRUE(tools::diff_timeseries(a, b, band).empty());
}

TEST(TimeseriesDiff, CadenceMismatchIsSchemaNotNoise) {
  Registry registry;
  Timeseries fast(Timeseries::Config{.interval_ms = 100,
                                     .ring_capacity = 512});
  Timeseries slow(Timeseries::Config{.interval_ms = 250,
                                     .ring_capacity = 512});
  fast.sample(registry, 0);
  slow.sample(registry, 0);
  const auto a = tools::parse_timeseries(fast.render_json());
  const auto b = tools::parse_timeseries(slow.render_json());
  tools::TimeseriesDiffOptions generous;
  generous.abs_tol = 1e9;  // no band forgives a schema change
  const auto differences = tools::diff_timeseries(a, b, generous);
  ASSERT_FALSE(differences.empty());
  EXPECT_EQ(differences[0].series, "(document)");
}

TEST(TimeseriesDiff, MalformedExportIsALoudParseError) {
  EXPECT_THROW(tools::parse_timeseries("{\n\"series\":[\n]\n}\n"),
               std::runtime_error);
}

}  // namespace
}  // namespace vgrid::obs
