// Unit tests for the guest OS model: page cache semantics and I/O CPU
// costing.

#include <gtest/gtest.h>

#include "guest/guest_os.hpp"
#include "guest/page_cache.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace vgrid::guest {
namespace {

using util::MiB;

TEST(PageCache, ColdReadGoesToDisk) {
  PageCache cache(64 * MiB);
  const auto plan = cache.plan_read("f", 8 * MiB);
  EXPECT_EQ(plan.cached_bytes, 0u);
  EXPECT_EQ(plan.disk_bytes, 8 * MiB);
}

TEST(PageCache, RereadHitsCache) {
  PageCache cache(64 * MiB);
  (void)cache.plan_read("f", 8 * MiB);
  const auto plan = cache.plan_read("f", 8 * MiB);
  EXPECT_EQ(plan.cached_bytes, 8 * MiB);
  EXPECT_EQ(plan.disk_bytes, 0u);
}

TEST(PageCache, WriteAbsorbedUnderDirtyLimit) {
  PageCache cache(100 * MiB, 0.4);
  const auto plan = cache.plan_write("f", 10 * MiB);
  EXPECT_EQ(plan.cached_bytes, 10 * MiB);
  EXPECT_EQ(plan.disk_bytes, 0u);
  EXPECT_EQ(cache.dirty(), 10 * MiB);
}

TEST(PageCache, WriteBeyondDirtyLimitIsSynchronous) {
  PageCache cache(100 * MiB, 0.4);  // dirty limit = 40 MiB
  const auto plan = cache.plan_write("f", 100 * MiB);
  EXPECT_EQ(plan.cached_bytes, 40 * MiB);
  EXPECT_EQ(plan.disk_bytes, 60 * MiB);
}

TEST(PageCache, FlushClearsDirty) {
  PageCache cache(100 * MiB);
  (void)cache.plan_write("f", 10 * MiB);
  EXPECT_EQ(cache.flush("f"), 10 * MiB);
  EXPECT_EQ(cache.dirty(), 0u);
  EXPECT_EQ(cache.flush("f"), 0u);  // idempotent
}

TEST(PageCache, FlushAllCoversEveryFile) {
  PageCache cache(100 * MiB);
  (void)cache.plan_write("a", 5 * MiB);
  (void)cache.plan_write("b", 7 * MiB);
  EXPECT_EQ(cache.flush_all(), 12 * MiB);
  EXPECT_EQ(cache.dirty(), 0u);
}

TEST(PageCache, LruEvictionUnderPressure) {
  PageCache cache(16 * MiB);
  (void)cache.plan_read("old", 8 * MiB);
  (void)cache.plan_read("mid", 8 * MiB);
  (void)cache.plan_read("new", 8 * MiB);  // evicts "old"
  EXPECT_EQ(cache.cached_bytes("old"), 0u);
  const auto plan = cache.plan_read("old", 8 * MiB);
  EXPECT_EQ(plan.disk_bytes, 8 * MiB);
}

TEST(PageCache, TouchKeepsHotFileResident) {
  PageCache cache(16 * MiB);
  (void)cache.plan_read("hot", 8 * MiB);
  (void)cache.plan_read("warm", 8 * MiB);
  (void)cache.plan_read("hot", 1 * MiB);  // touch
  (void)cache.plan_read("cold", 8 * MiB); // evicts "warm", not "hot"
  EXPECT_GT(cache.cached_bytes("hot"), 0u);
  EXPECT_EQ(cache.cached_bytes("warm"), 0u);
}

TEST(PageCache, DropCleanKeepsDirty) {
  PageCache cache(100 * MiB);
  (void)cache.plan_read("clean", 10 * MiB);
  (void)cache.plan_write("dirty", 10 * MiB);
  cache.drop_clean();
  EXPECT_EQ(cache.cached_bytes("clean"), 0u);
  EXPECT_EQ(cache.cached_bytes("dirty"), 10 * MiB);
  EXPECT_EQ(cache.dirty(), 10 * MiB);
}

TEST(PageCache, UsedNeverExceedsCapacity) {
  PageCache cache(10 * MiB);
  for (int i = 0; i < 20; ++i) {
    (void)cache.plan_read("f" + std::to_string(i), 3 * MiB);
    EXPECT_LE(cache.used(), cache.capacity());
  }
}

TEST(PageCache, RejectsBadConfig) {
  EXPECT_THROW(PageCache(0), util::ConfigError);
  EXPECT_THROW(PageCache(1024, 0.0), util::ConfigError);
  EXPECT_THROW(PageCache(1024, 1.5), util::ConfigError);
}

TEST(GuestOs, CacheSizedFromRam) {
  GuestOsConfig config;
  config.ram_bytes = 300 * MiB;
  config.cache_share = 0.5;
  const GuestOs guest(config);
  EXPECT_EQ(guest.page_cache().capacity(), 150 * MiB);
}

TEST(GuestOs, IoCpuCostScalesWithOpsAndBytes) {
  const GuestOs guest;
  const auto small = guest.io_cpu_cost(1, 4096);
  const auto large = guest.io_cpu_cost(100, 4096 * 100);
  EXPECT_GT(large.instructions, small.instructions * 50);
  EXPECT_GT(small.mix.kernel, 0.5);  // I/O cost is kernel-mode work
}

}  // namespace
}  // namespace vgrid::guest
