// Unit tests for the hypervisor layer: profiles, virtual devices, step
// translation, the VirtualMachine lifecycle and checkpoint files.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/testbed.hpp"
#include "os/program.hpp"
#include "util/error.hpp"
#include "util/units.hpp"
#include "vmm/checkpoint.hpp"
#include "vmm/profile.hpp"
#include "vmm/virtual_disk.hpp"
#include "vmm/virtual_machine.hpp"
#include "vmm/virtual_nic.hpp"
#include "vmm/vmm_program.hpp"

namespace vgrid::vmm {
namespace {

// ---- profiles --------------------------------------------------------------------

TEST(Profiles, AllFourEnvironmentsPresent) {
  const auto profiles = profiles::all();
  ASSERT_EQ(profiles.size(), 4u);
  EXPECT_EQ(profiles[0].name, "vmplayer");
  EXPECT_EQ(profiles[1].name, "qemu");
  EXPECT_EQ(profiles[2].name, "virtualbox");
  EXPECT_EQ(profiles[3].name, "virtualpc");
}

TEST(Profiles, ByNameAndAliases) {
  EXPECT_TRUE(profiles::by_name("vmplayer").has_value());
  EXPECT_TRUE(profiles::by_name("VMware").has_value());
  EXPECT_TRUE(profiles::by_name("vbox").has_value());
  EXPECT_TRUE(profiles::by_name("VPC").has_value());
  EXPECT_FALSE(profiles::by_name("xen").has_value());
}

TEST(Profiles, KernelCostDominatesUserCost) {
  // Full virtualization: privileged instructions are the expensive class
  // in every environment (the Tanaka et al. mechanism the paper cites).
  for (const auto& profile : profiles::all()) {
    EXPECT_GT(profile.exec.kernel, profile.exec.user_int) << profile.name;
    EXPECT_GT(profile.exec.kernel, profile.exec.user_fp) << profile.name;
    EXPECT_GE(profile.exec.user_int, 1.0) << profile.name;
  }
}

TEST(Profiles, VmPlayerFastestGuestHeaviestHost) {
  // The paper's headline correlation: best guest performance, biggest
  // host impact.
  const auto vmplayer = profiles::vmplayer();
  for (const auto& other :
       {profiles::qemu(), profiles::virtualbox(), profiles::virtualpc()}) {
    EXPECT_LE(vmplayer.exec.user_int, other.exec.user_int);
    EXPECT_LT(vmplayer.disk.path_multiplier, other.disk.path_multiplier);
    EXPECT_GT(vmplayer.host.service_demand_cores,
              other.host.service_demand_cores);
  }
}

TEST(Profiles, NetModeSupport) {
  EXPECT_TRUE(profiles::vmplayer().supports(NetMode::kBridged));
  EXPECT_TRUE(profiles::vmplayer().supports(NetMode::kNat));
  EXPECT_FALSE(profiles::virtualbox().supports(NetMode::kBridged));
  EXPECT_THROW(profiles::virtualbox().net(NetMode::kBridged),
               util::ConfigError);
}

TEST(Profiles, DefaultRamIsPaperValue) {
  for (const auto& profile : profiles::all()) {
    EXPECT_EQ(profile.default_ram_bytes, 300 * util::MiB) << profile.name;
  }
}

TEST(Profiles, ParavirtExtensionBeatsFullVirtualization) {
  // The future-work profile: paravirtualization must dominate every full
  // virtualization profile on every axis (that is its reason to exist).
  const auto paravirt = profiles::paravirt();
  for (const auto& full : profiles::all()) {
    EXPECT_LT(paravirt.exec.kernel, full.exec.kernel) << full.name;
    EXPECT_LE(paravirt.exec.user_int, full.exec.user_int) << full.name;
    EXPECT_LT(paravirt.disk.path_multiplier, full.disk.path_multiplier)
        << full.name;
    EXPECT_LT(paravirt.host.service_demand_cores,
              full.host.service_demand_cores)
        << full.name;
  }
}

TEST(Profiles, ParavirtNotInPaperEnsemble) {
  for (const auto& profile : profiles::all()) {
    EXPECT_NE(profile.name, "paravirt");
  }
  const auto extended = profiles::extended();
  EXPECT_EQ(extended.size(), 5u);
  EXPECT_EQ(extended.back().name, "paravirt");
  EXPECT_TRUE(profiles::by_name("paravirt").has_value());
}

// ---- virtual disk -------------------------------------------------------------------

TEST(VirtualDisk, GuestServiceTimeScaledByMultiplier) {
  core::Testbed testbed;
  DiskModel model{2.0, 100.0};
  VirtualDisk vdisk(testbed.machine(), model);
  const os::DiskStep step{hw::DiskOp::kRead, 1024 * 1024, true};
  const auto raw = testbed.machine().disk().service_time(
      hw::DiskRequest{step.op, step.bytes, step.sequential, {}});
  const auto guest = vdisk.guest_service_time(step);
  EXPECT_NEAR(static_cast<double>(guest),
              static_cast<double>(raw) * 2.0 + 100e3, 1.0);
}

TEST(VirtualDisk, TranslationPreservesTransferAndAddsOverhead) {
  core::Testbed testbed;
  VirtualDisk vdisk(testbed.machine(), DiskModel{3.0, 0.0});
  const os::DiskStep step{hw::DiskOp::kWrite, 4096, true};
  const auto steps = vdisk.translate(step);
  ASSERT_EQ(steps.size(), 2u);
  const auto* disk = std::get_if<os::DiskStep>(&steps[0]);
  ASSERT_NE(disk, nullptr);
  EXPECT_EQ(disk->bytes, 4096u);
  EXPECT_TRUE(std::holds_alternative<os::SleepStep>(steps[1]));
}

TEST(VirtualDisk, UnityMultiplierAddsNothing) {
  core::Testbed testbed;
  VirtualDisk vdisk(testbed.machine(), DiskModel{1.0, 0.0});
  const auto steps =
      vdisk.translate(os::DiskStep{hw::DiskOp::kRead, 4096, true});
  EXPECT_EQ(steps.size(), 1u);
}

// ---- virtual nic --------------------------------------------------------------------

TEST(VirtualNic, ThroughputCappedAtModelRate) {
  core::Testbed testbed;
  VirtualNic nic(testbed.machine(), NetModel{10.0, 0.0}, NetMode::kNat);
  EXPECT_NEAR(util::bytes_per_sec_to_mbps(nic.effective_bps()), 10.0, 1e-9);
}

TEST(VirtualNic, BridgedAtWireSpeedWhenCapHigh) {
  core::Testbed testbed;
  VirtualNic nic(testbed.machine(), NetModel{1000.0, 0.0},
                 NetMode::kBridged);
  EXPECT_NEAR(nic.effective_bps(),
              testbed.machine().nic().effective_bps(), 1.0);
}

TEST(VirtualNic, TranslationAddsSlowdownSleep) {
  core::Testbed testbed;
  VirtualNic nic(testbed.machine(), NetModel{1.0, 0.0}, NetMode::kNat);
  const auto steps = nic.translate(os::NetStep{1000 * 1000});
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_TRUE(std::holds_alternative<os::NetStep>(steps[0]));
  const auto* sleep = std::get_if<os::SleepStep>(&steps[1]);
  ASSERT_NE(sleep, nullptr);
  EXPECT_GT(sleep->duration, 0);
}

// ---- VmmProgram ----------------------------------------------------------------------

TEST(VmmProgram, ComposesMultipliersOnComputeSteps) {
  core::Testbed testbed;
  os::ProgramBuilder builder;
  hw::ClassMultipliers inner;
  inner.kernel = 2.0;
  builder.compute(100, hw::mixes::io_bound(), inner);
  VirtualDisk vdisk(testbed.machine(), DiskModel{});
  hw::ClassMultipliers exec;
  exec.kernel = 5.0;
  exec.user_int = 1.5;
  VmmProgram program(builder.build(), exec, vdisk, nullptr);
  const os::Step step = program.next();
  const auto* compute = std::get_if<os::ComputeStep>(&step);
  ASSERT_NE(compute, nullptr);
  EXPECT_DOUBLE_EQ(compute->multipliers.kernel, 10.0);
  EXPECT_DOUBLE_EQ(compute->multipliers.user_int, 1.5);
}

TEST(VmmProgram, ExpandsDiskSteps) {
  core::Testbed testbed;
  os::ProgramBuilder builder;
  builder.disk_read(8192);
  VirtualDisk vdisk(testbed.machine(), DiskModel{4.0, 50.0});
  VmmProgram program(builder.build(), hw::ClassMultipliers{}, vdisk,
                     nullptr);
  EXPECT_TRUE(std::holds_alternative<os::DiskStep>(program.next()));
  EXPECT_TRUE(std::holds_alternative<os::SleepStep>(program.next()));
  EXPECT_TRUE(std::holds_alternative<os::DoneStep>(program.next()));
}

TEST(VmmProgram, NetWithoutNicThrows) {
  core::Testbed testbed;
  os::ProgramBuilder builder;
  builder.net(1000);
  VirtualDisk vdisk(testbed.machine(), DiskModel{});
  VmmProgram program(builder.build(), hw::ClassMultipliers{}, vdisk,
                     nullptr);
  EXPECT_THROW(program.next(), util::SimulationError);
}

// ---- VirtualMachine -------------------------------------------------------------------

TEST(VirtualMachine, PowerOnCommitsRamAndServiceLoad) {
  core::Testbed testbed;
  VirtualMachine vm(testbed.scheduler(), profiles::vmplayer());
  EXPECT_EQ(testbed.machine().ram_committed(), 0u);
  vm.power_on();
  EXPECT_EQ(testbed.machine().ram_committed(), 300 * util::MiB);
  EXPECT_NEAR(testbed.machine().service_demand(), 0.60, 1e-12);
  vm.power_off();
  EXPECT_EQ(testbed.machine().ram_committed(), 0u);
  EXPECT_NEAR(testbed.machine().service_demand(), 0.0, 1e-12);
}

TEST(VirtualMachine, PowerOnIsIdempotent) {
  core::Testbed testbed;
  VirtualMachine vm(testbed.scheduler(), profiles::qemu());
  vm.power_on();
  vm.power_on();
  EXPECT_EQ(testbed.machine().ram_committed(), 300 * util::MiB);
}

TEST(VirtualMachine, TwoVmsStackServiceDemand) {
  core::Testbed testbed;
  VirtualMachine a(testbed.scheduler(), profiles::virtualbox());
  VirtualMachine b(testbed.scheduler(), profiles::virtualpc());
  a.power_on();
  b.power_on();
  EXPECT_NEAR(testbed.machine().service_demand(), 0.40, 1e-12);
  EXPECT_EQ(testbed.machine().ram_committed(), 600 * util::MiB);
}

TEST(VirtualMachine, InsufficientRamThrows) {
  hw::MachineConfig config = core::paper_machine_config();
  config.ram_bytes = 200 * util::MiB;
  core::Testbed testbed(config);
  VirtualMachine vm(testbed.scheduler(), profiles::vmplayer());
  EXPECT_THROW(vm.power_on(), util::ConfigError);
}

TEST(VirtualMachine, GuestRunsSlowerThanNative) {
  // Fixed compute work: guest completion must be strictly slower than a
  // native host thread doing the same work.
  const double instructions = 1e9;
  core::Testbed native;
  os::ProgramBuilder native_builder;
  native_builder.compute(instructions, hw::mixes::sevenzip());
  auto& native_thread = native.scheduler().spawn(
      "native", os::PriorityClass::kNormal, native_builder.build());
  const double native_seconds = native.run_until_done(native_thread);

  core::Testbed virt;
  VirtualMachine vm(virt.scheduler(), profiles::virtualpc());
  os::ProgramBuilder guest_builder;
  guest_builder.compute(instructions, hw::mixes::sevenzip());
  auto& vcpu = vm.run_guest("bench", guest_builder.build());
  const double guest_seconds = virt.run_until_done(vcpu);

  EXPECT_GT(guest_seconds, native_seconds * 1.2);
  EXPECT_LT(guest_seconds, native_seconds * 2.0);
}

TEST(VirtualMachine, UnsupportedNetModeThrows) {
  core::Testbed testbed;
  VmConfig config;
  config.net_mode = NetMode::kBridged;
  EXPECT_THROW(
      VirtualMachine(testbed.scheduler(), profiles::virtualbox(), config),
      util::ConfigError);
}

TEST(VirtualMachine, CheckpointWithoutGuestThrows) {
  core::Testbed testbed;
  VirtualMachine vm(testbed.scheduler(), profiles::vmplayer());
  EXPECT_THROW(vm.checkpoint("x"), util::ConfigError);
}

// ---- checkpoint files ------------------------------------------------------------------

TEST(Checkpoint, SaveLoadRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    "vgrid-test-image.vmimg";
  const VmImage image{"qemu", 300 * util::MiB, "einstein-program-v1",
                      "12/96/3/1\nwith|weird%chars"};
  save_image(path.string(), image);
  const VmImage loaded = load_image(path.string());
  EXPECT_EQ(loaded.vmm_name, image.vmm_name);
  EXPECT_EQ(loaded.ram_bytes, image.ram_bytes);
  EXPECT_EQ(loaded.guest_kind, image.guest_kind);
  EXPECT_EQ(loaded.guest_state, image.guest_state);
  std::filesystem::remove(path);
}

TEST(Checkpoint, LoadRejectsBadMagic) {
  const auto path = std::filesystem::temp_directory_path() /
                    "vgrid-test-bad.vmimg";
  {
    std::ofstream out(path);
    out << "not an image\n";
  }
  EXPECT_THROW(load_image(path.string()), util::ConfigError);
  std::filesystem::remove(path);
}

TEST(Checkpoint, LoadMissingFileThrows) {
  EXPECT_THROW(load_image("/nonexistent/vgrid.vmimg"), util::SystemError);
}

}  // namespace
}  // namespace vgrid::vmm
