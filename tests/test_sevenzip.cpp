// Tests for the 7z-style compressor: range coder primitives, LZ77
// tokenizer, full round-trips (including parameterized property sweeps)
// and the benchmark mode.

#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "workloads/sevenzip/bench7z.hpp"
#include "workloads/sevenzip/compressor.hpp"
#include "workloads/sevenzip/lz77.hpp"
#include "workloads/sevenzip/range_coder.hpp"

namespace vgrid::workloads::sevenzip {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

// ---- range coder -------------------------------------------------------------

TEST(RangeCoder, SingleBitRoundTrip) {
  for (const int bit : {0, 1}) {
    RangeEncoder encoder;
    BitProb prob = kProbInit;
    encoder.encode_bit(prob, bit);
    encoder.finish();
    const auto data = encoder.take_output();
    RangeDecoder decoder(data);
    BitProb dprob = kProbInit;
    EXPECT_EQ(decoder.decode_bit(dprob), bit);
  }
}

TEST(RangeCoder, LongBitSequenceRoundTrip) {
  util::Xoshiro256 rng(5);
  std::vector<int> bits(20000);
  for (auto& b : bits) b = rng.chance(0.85) ? 1 : 0;  // skewed

  RangeEncoder encoder;
  BitProb prob = kProbInit;
  for (const int b : bits) encoder.encode_bit(prob, b);
  encoder.finish();
  const auto data = encoder.take_output();

  RangeDecoder decoder(data);
  BitProb dprob = kProbInit;
  for (const int b : bits) {
    ASSERT_EQ(decoder.decode_bit(dprob), b);
  }
  EXPECT_FALSE(decoder.underflow());
}

TEST(RangeCoder, SkewedBitsCompressBelowOneBitPerSymbol) {
  util::Xoshiro256 rng(6);
  const int n = 100000;
  RangeEncoder encoder;
  BitProb prob = kProbInit;
  for (int i = 0; i < n; ++i) {
    encoder.encode_bit(prob, rng.chance(0.95) ? 1 : 0);
  }
  encoder.finish();
  // Entropy of p=0.95 is ~0.286 bits; adaptive coding should get close.
  EXPECT_LT(encoder.output().size(), n / 8 / 2);
}

TEST(RangeCoder, DirectBitsRoundTrip) {
  util::Xoshiro256 rng(7);
  std::vector<std::pair<std::uint32_t, int>> values;
  RangeEncoder encoder;
  for (int i = 0; i < 2000; ++i) {
    const int bits = 1 + static_cast<int>(rng.below(24));
    const auto value =
        static_cast<std::uint32_t>(rng.below(1ull << bits));
    values.emplace_back(value, bits);
    encoder.encode_direct_bits(value, bits);
  }
  encoder.finish();
  RangeDecoder decoder(encoder.output());
  for (const auto& [value, bits] : values) {
    ASSERT_EQ(decoder.decode_direct_bits(bits), value);
  }
}

TEST(RangeCoder, BitTreeRoundTrip) {
  util::Xoshiro256 rng(8);
  std::vector<BitProb> enc_probs(1 << 9, kProbInit);
  std::vector<BitProb> dec_probs(1 << 9, kProbInit);
  std::vector<std::uint32_t> symbols(5000);
  RangeEncoder encoder;
  for (auto& s : symbols) {
    s = static_cast<std::uint32_t>(rng.below(256));
    encoder.encode_bit_tree(enc_probs, s, 8);
  }
  encoder.finish();
  RangeDecoder decoder(encoder.output());
  for (const std::uint32_t s : symbols) {
    ASSERT_EQ(decoder.decode_bit_tree(dec_probs, 8), s);
  }
}

TEST(RangeCoder, DecoderReportsUnderflowOnTruncatedInput) {
  RangeEncoder encoder;
  BitProb prob = kProbInit;
  for (int i = 0; i < 1000; ++i) encoder.encode_bit(prob, i & 1);
  encoder.finish();
  auto data = encoder.take_output();
  data.resize(data.size() / 4);
  RangeDecoder decoder(data);
  BitProb dprob = kProbInit;
  for (int i = 0; i < 1000; ++i) (void)decoder.decode_bit(dprob);
  EXPECT_TRUE(decoder.underflow());
}

// ---- LZ77 -----------------------------------------------------------------------

TEST(Lz77, EmptyInput) {
  const auto tokens = tokenize({});
  EXPECT_TRUE(tokens.empty());
  EXPECT_TRUE(detokenize(tokens, 0).empty());
}

TEST(Lz77, AllLiteralsForShortInput) {
  const auto data = bytes_of("ab");
  const auto tokens = tokenize(data);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_FALSE(tokens[0].is_match());
  EXPECT_EQ(detokenize(tokens, data.size()), data);
}

TEST(Lz77, FindsRepeats) {
  const auto data = bytes_of("abcabcabcabcabcabc");
  MatchFinderStats stats;
  const auto tokens = tokenize(data, {}, &stats);
  EXPECT_GT(stats.matches_emitted, 0u);
  EXPECT_EQ(detokenize(tokens, data.size()), data);
}

TEST(Lz77, OverlappingMatchRle) {
  // "aaaa..." forces distance-1 overlapping copies.
  const std::vector<std::uint8_t> data(500, 'a');
  const auto tokens = tokenize(data);
  EXPECT_LT(tokens.size(), 20u);
  EXPECT_EQ(detokenize(tokens, data.size()), data);
}

TEST(Lz77, MatchLengthCapRespected) {
  const std::vector<std::uint8_t> data(10000, 'x');
  for (const Token& token : tokenize(data)) {
    if (token.is_match()) {
      EXPECT_LE(token.length, kMaxMatch);
      EXPECT_GE(token.length, kMinMatch);
    }
  }
}

TEST(Lz77, DetokenizeRejectsBadDistance) {
  std::vector<Token> tokens;
  tokens.push_back(Token{0, 0, 'a'});
  tokens.push_back(Token{5, 9, 0});  // distance beyond output
  EXPECT_THROW(detokenize(tokens, 6), util::VgridError);
}

TEST(Lz77, LazyMatchingNotWorseThanGreedy) {
  const auto corpus = SevenZipBench::generate_corpus(64 * 1024, 99);
  MatchFinderConfig lazy;
  lazy.lazy_matching = true;
  MatchFinderConfig greedy;
  greedy.lazy_matching = false;
  const auto lazy_tokens = tokenize(corpus, lazy);
  const auto greedy_tokens = tokenize(corpus, greedy);
  EXPECT_EQ(detokenize(lazy_tokens, corpus.size()), corpus);
  EXPECT_EQ(detokenize(greedy_tokens, corpus.size()), corpus);
  EXPECT_LE(lazy_tokens.size(), greedy_tokens.size() + 16);
}

// ---- compressor round-trips -----------------------------------------------------

TEST(Compressor, EmptyRoundTrip) {
  const auto packed = compress({});
  EXPECT_TRUE(decompress(packed).empty());
}

TEST(Compressor, TextRoundTrip) {
  const auto data = bytes_of(
      "the quick brown fox jumps over the lazy dog; "
      "the quick brown fox jumps over the lazy dog again and again");
  const auto packed = compress(data);
  EXPECT_EQ(decompress(packed), data);
}

TEST(Compressor, RepetitiveInputCompressesWell) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 1000; ++i) {
    const auto chunk = bytes_of("desktop grid computing ");
    data.insert(data.end(), chunk.begin(), chunk.end());
  }
  CompressStats stats;
  const auto packed = compress(data, {}, &stats);
  EXPECT_LT(stats.ratio(), 0.05);
  EXPECT_EQ(decompress(packed), data);
}

TEST(Compressor, IncompressibleInputExpandsOnlySlightly) {
  util::Xoshiro256 rng(3);
  std::vector<std::uint8_t> data(64 * 1024);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  CompressStats stats;
  const auto packed = compress(data, {}, &stats);
  EXPECT_LT(stats.ratio(), 1.10);
  EXPECT_EQ(decompress(packed), data);
}

TEST(Compressor, RejectsCorruptMagic) {
  auto packed = compress(bytes_of("hello hello hello"));
  packed[0] ^= 0xFF;
  EXPECT_THROW(decompress(packed), util::VgridError);
}

TEST(Compressor, RejectsTruncatedStream) {
  const auto data = SevenZipBench::generate_corpus(32 * 1024, 4);
  auto packed = compress(data);
  packed.resize(packed.size() / 2);
  EXPECT_THROW(decompress(packed), util::VgridError);
}

// Property sweep: round-trip across seeds and sizes (parameterized, as the
// repetition methodology prescribes).
class CompressorRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(CompressorRoundTrip, Holds) {
  const auto [seed, size] = GetParam();
  const auto data = SevenZipBench::generate_corpus(size, seed);
  CompressStats stats;
  const auto packed = compress(data, {}, &stats);
  EXPECT_EQ(stats.input_bytes, data.size());
  EXPECT_EQ(decompress(packed), data);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSizes, CompressorRoundTrip,
    ::testing::Combine(::testing::Values(1, 2, 3, 17, 99),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{1000},
                                         std::size_t{65536},
                                         std::size_t{262144})));

// Adversarial structured patterns: the classic trip-wires for LZ77 +
// entropy-coder implementations (match extension at buffer end, distance
// slot boundaries, overlapping copies, degenerate alphabets).
class CompressorAdversarial : public ::testing::TestWithParam<int> {
 public:
  static std::vector<std::uint8_t> make_pattern(int kind) {
    std::vector<std::uint8_t> data;
    switch (kind) {
      case 0:  // all zeros
        data.assign(100'000, 0);
        break;
      case 1:  // single byte then repeats (distance 1 from the start)
        data.assign(65'537, 'z');
        break;
      case 2:  // alternating two symbols
        for (int i = 0; i < 50'000; ++i) {
          data.push_back(i % 2 == 0 ? 'a' : 'b');
        }
        break;
      case 3: {  // period exactly at a distance-slot boundary (2^k)
        for (int i = 0; i < 60'000; ++i) {
          data.push_back(static_cast<std::uint8_t>(i % 4096));
        }
        break;
      }
      case 4: {  // long runs separated by unique bytes
        for (int block = 0; block < 100; ++block) {
          data.insert(data.end(), 500, static_cast<std::uint8_t>(block));
          data.push_back(static_cast<std::uint8_t>(255 - block));
        }
        break;
      }
      case 5: {  // ascending ramp (no 3-byte repeats at all)
        for (int i = 0; i < 70'000; ++i) {
          data.push_back(static_cast<std::uint8_t>(i * 7 + i / 256));
        }
        break;
      }
      case 6: {  // match that must end exactly at the buffer end
        const std::string phrase = "endgame";
        for (int i = 0; i < 1000; ++i) {
          data.insert(data.end(), phrase.begin(), phrase.end());
        }
        break;
      }
      default:  // tiny inputs 0..kMinMatch bytes
        data.assign(static_cast<std::size_t>(kind - 7), 'q');
        break;
    }
    return data;
  }
};

TEST_P(CompressorAdversarial, RoundTrips) {
  const auto data = make_pattern(GetParam());
  const auto packed = compress(data);
  EXPECT_EQ(decompress(packed), data);
}

INSTANTIATE_TEST_SUITE_P(Patterns, CompressorAdversarial,
                         ::testing::Range(0, 12));

TEST(Compressor, HighlyPeriodicDataApproachesEntropyFloor) {
  const auto data = CompressorAdversarial::make_pattern(0);  // zeros
  CompressStats stats;
  (void)compress(data, {}, &stats);
  EXPECT_LT(stats.ratio(), 0.01);  // 100 KB of zeros -> < 1 KB
}

// ---- benchmark mode ----------------------------------------------------------------

TEST(Bench7z, CorpusIsCompressibleButNotTrivial) {
  const auto corpus = SevenZipBench::generate_corpus(256 * 1024, 42);
  CompressStats stats;
  (void)compress(corpus, {}, &stats);
  EXPECT_GT(stats.ratio(), 0.15);
  EXPECT_LT(stats.ratio(), 0.95);
}

TEST(Bench7z, SingleThreadRunVerifies) {
  Bench7zConfig config;
  config.data_bytes = 128 * 1024;
  SevenZipBench bench(config);
  const Bench7zResult result = bench.run_benchmark();
  EXPECT_TRUE(result.verified);
  EXPECT_GT(result.elapsed_seconds, 0.0);
  EXPECT_GT(result.mips(), 0.0);
  EXPECT_EQ(result.input_bytes, 128u * 1024u);
}

TEST(Bench7z, MultiThreadProcessesPerThreadData) {
  Bench7zConfig config;
  config.data_bytes = 64 * 1024;
  config.threads = 2;
  SevenZipBench bench(config);
  const Bench7zResult result = bench.run_benchmark();
  EXPECT_TRUE(result.verified);
  EXPECT_EQ(result.input_bytes, 2u * 64u * 1024u);
}

TEST(Bench7z, WorkloadInterface) {
  Bench7zConfig config;
  config.data_bytes = 64 * 1024;
  SevenZipBench bench(config);
  EXPECT_EQ(bench.name(), "7z-b-mmt1");
  const NativeResult native = bench.run_native();
  EXPECT_GT(native.elapsed_seconds, 0.0);
  EXPECT_GT(bench.simulated_instructions(), 0.0);
  auto program = bench.make_program();
  EXPECT_TRUE(std::holds_alternative<os::ComputeStep>(program->next()));
}

TEST(Bench7z, ReportsDecompressionRate) {
  Bench7zConfig config;
  config.data_bytes = 256 * 1024;
  SevenZipBench bench(config);
  const Bench7zResult result = bench.run_benchmark();
  EXPECT_GT(result.decompress_seconds, 0.0);
  EXPECT_GT(result.decompress_mb_per_s(), 0.0);
  // Expansion is much cheaper than match finding.
  EXPECT_LT(result.decompress_seconds, result.elapsed_seconds);
}

TEST(Bench7z, RejectsBadConfig) {
  Bench7zConfig config;
  config.threads = 0;
  EXPECT_THROW(SevenZipBench{config}, util::ConfigError);
}

// Robustness: random single-bit corruption of a valid stream must never
// crash, hang, or return more data than the header promises — either a
// clean VgridError or bounded (garbage) output.
class CompressorBitFlip : public ::testing::TestWithParam<int> {};

TEST_P(CompressorBitFlip, CorruptionIsContained) {
  const auto data = SevenZipBench::generate_corpus(32 * 1024, 21);
  auto packed = compress(data);
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  for (int flip = 0; flip < 50; ++flip) {
    auto corrupted = packed;
    const std::size_t byte = rng.below(corrupted.size());
    corrupted[byte] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    try {
      const auto out = decompress(corrupted);
      EXPECT_LE(out.size(), data.size());
    } catch (const util::VgridError&) {
      // Clean rejection is equally acceptable.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressorBitFlip,
                         ::testing::Values(1, 2, 3));

TEST(Compressor, RandomBytesWithValidHeaderContained) {
  util::Xoshiro256 rng(33);
  for (int trial = 0; trial < 100; ++trial) {
    // Valid magic + size header followed by random garbage.
    std::vector<std::uint8_t> garbage{'v', 'g', '7', 'z'};
    const std::uint32_t claimed = 4096;
    for (int i = 0; i < 4; ++i) {
      garbage.push_back(
          static_cast<std::uint8_t>(claimed >> (8 * i)));
    }
    const std::size_t body = 16 + rng.below(256);
    for (std::size_t i = 0; i < body; ++i) {
      garbage.push_back(static_cast<std::uint8_t>(rng.next()));
    }
    try {
      const auto out = decompress(garbage);
      EXPECT_LE(out.size(), claimed);
    } catch (const util::VgridError&) {
    }
  }
}

}  // namespace
}  // namespace vgrid::workloads::sevenzip
