// Randomized model-equivalence suite for sim::EventQueue.
//
// The indexed-heap queue is checked against the dumbest possible reference
// model: a sorted-on-demand vector of (time, insertion-seq) records with
// eager cancellation. The model is obviously correct — its pop is "scan for
// the minimum (time, seq) pair" — so any divergence in the (time, id) pop
// sequence is a bug in the heap's sift/lazy-cancel machinery, not
// in the test. Each run drives ~a million mixed operations (push, cancel,
// pop, bulk insert, storage recycle) from several seeds, covering the
// regimes the simulator produces: bursty near-future pushes, heavy
// cancellation (quantum re-arms), drain-to-empty, and arena reuse across
// simulated hosts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace vgrid::sim {
namespace {

// Reference model: eager, linear, trivially correct.
class ModelQueue {
 public:
  EventId push(SimTime when, EventId id) {
    pending_.push_back(Pending{when, next_seq_++, id});
    return id;
  }

  bool cancel(EventId id) {
    const auto it =
        std::find_if(pending_.begin(), pending_.end(),
                     [id](const Pending& p) { return p.id == id; });
    if (it == pending_.end()) return false;
    pending_.erase(it);  // eager: the model never holds cancelled entries
    return true;
  }

  bool empty() const { return pending_.empty(); }
  std::size_t size() const { return pending_.size(); }

  /// Pop the earliest (time, insertion-seq) entry — a linear scan.
  std::pair<SimTime, EventId> pop() {
    auto best = pending_.begin();
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->time < best->time ||
          (it->time == best->time && it->seq < best->seq)) {
        best = it;
      }
    }
    const std::pair<SimTime, EventId> out{best->time, best->id};
    pending_.erase(best);
    return out;
  }

  SimTime next_time() {
    auto best = pending_.begin();
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->time < best->time ||
          (it->time == best->time && it->seq < best->seq)) {
        best = it;
      }
    }
    return best->time;
  }

  void clear() { pending_.clear(); }

 private:
  struct Pending {
    SimTime time;
    std::uint64_t seq;  ///< model-side insertion order (FIFO tie-break)
    EventId id;         ///< the real queue's handle for this event
  };
  std::vector<Pending> pending_;
  std::uint64_t next_seq_ = 0;
};

// One fuzzing campaign: `ops` weighted operations against both queues,
// checking every pop and next_time against the model. The storage
// parameter is in/out so campaigns can chain through recycled arenas
// (ASSERT_* requires a void return).
void run_campaign(std::uint64_t seed, std::size_t ops,
                  EventQueue::Storage& storage) {
  util::Rng rng(seed);
  EventQueue queue(std::move(storage));
  ModelQueue model;
  // Live handles the campaign may cancel. Cancelled/fired ids stay in a
  // stale pool to exercise the generation check on dead handles.
  std::vector<EventId> live;
  std::vector<EventId> stale;
  SimTime clock = 0;  // popped times are monotone; pushes stay >= clock

  std::uint64_t popped = 0;
  std::uint64_t cancelled = 0;

  for (std::size_t i = 0; i < ops; ++i) {
    const std::uint64_t roll = rng.below(100);
    if (roll < 40) {
      // Push at a near-future time. A coarse time grid (below(50))
      // manufactures plenty of ties so the FIFO tie-break is load-bearing.
      const SimTime when = clock + static_cast<SimTime>(rng.below(50));
      const EventId id = queue.push(when, [] {});
      model.push(when, id);
      live.push_back(id);
    } else if (roll < 55 && !live.empty()) {
      // Cancel a random live event.
      const std::size_t pick = rng.below(live.size());
      const EventId id = live[pick];
      live[pick] = live.back();
      live.pop_back();
      ASSERT_TRUE(queue.cancel(id)) << "live handle refused cancel";
      ASSERT_TRUE(model.cancel(id));
      stale.push_back(id);
      ++cancelled;
    } else if (roll < 60 && !stale.empty()) {
      // A dead handle (already fired or cancelled) must be rejected.
      const EventId id = stale[rng.below(stale.size())];
      ASSERT_FALSE(queue.cancel(id)) << "stale handle accepted";
    } else if (roll < 70) {
      // Bulk insert a small batch at mixed times.
      const std::size_t count = 1 + rng.below(8);
      SimTime times[8];
      EventId ids[8];
      for (std::size_t j = 0; j < count; ++j) {
        times[j] = clock + static_cast<SimTime>(rng.below(50));
      }
      queue.push_bulk(times, count, [](std::size_t) { return [] {}; }, ids);
      for (std::size_t j = 0; j < count; ++j) {
        model.push(times[j], ids[j]);
        live.push_back(ids[j]);
      }
    } else if (!queue.empty()) {
      // Pop and compare (time, id) against the model; spot-check
      // next_time() first since it shares the lazy-prune path.
      ASSERT_FALSE(model.empty()) << "queue has events the model lacks";
      ASSERT_EQ(queue.next_time(), model.next_time());
      const EventQueue::Fired fired = queue.pop();
      const auto expected = model.pop();
      ASSERT_EQ(fired.time, expected.first) << "pop time diverged";
      ASSERT_EQ(fired.id, expected.second) << "pop order diverged";
      ASSERT_TRUE(static_cast<bool>(fired.callback));
      clock = fired.time;
      const auto it = std::find(live.begin(), live.end(), fired.id);
      ASSERT_NE(it, live.end());
      *it = live.back();
      live.pop_back();
      stale.push_back(fired.id);
      ++popped;
    }
    ASSERT_EQ(queue.pending_count(), model.size());
    ASSERT_EQ(queue.empty(), model.empty());
    if (stale.size() > 4096) stale.resize(1024);  // bound the pools
  }

  // Drain: the remaining pop sequence must match the model exactly.
  while (!queue.empty()) {
    const EventQueue::Fired fired = queue.pop();
    const auto expected = model.pop();
    ASSERT_EQ(fired.time, expected.first);
    ASSERT_EQ(fired.id, expected.second);
    ++popped;
  }
  EXPECT_TRUE(model.empty());
  // The weights guarantee a real mix — a campaign that degenerated into
  // pure pushes or pure pops would be testing nothing.
  EXPECT_GT(popped, ops / 20);
  EXPECT_GT(cancelled, ops / 40);
  storage = queue.release_storage();
}

TEST(EventQueueModel, MillionMixedOpsMatchReferenceAcrossSeeds) {
  // ~1M operations total, split across seeds so a failure pins the seed.
  // Storage chains from campaign to campaign: the arena each seed runs in
  // was dirtied by the previous one, which is exactly how fleet recycles
  // queues between hosts — equivalence must survive recycling.
  const std::uint64_t seeds[] = {0x5eedULL, 0xcafef00dULL, 0xdecafbadULL,
                                 0x7e57ab1eULL};
  EventQueue::Storage storage;
  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE(testing::Message() << "seed 0x" << std::hex << seed);
    run_campaign(seed, 250'000, storage);
    if (testing::Test::HasFatalFailure()) return;
    // Recycled arenas keep capacity: after the first campaign the slot
    // arenas never need to grow again for same-sized campaigns.
    EXPECT_GT(storage.nodes.capacity(), 0u);
    EXPECT_GE(storage.callbacks.capacity(), storage.nodes.size());
  }
}

TEST(EventQueueModel, AdoptedStorageBehavesLikeFreshQueue) {
  // A queue abandoned mid-run (pending events and all) must hand its arena
  // to a successor that behaves exactly like a fresh queue.
  EventQueue first;
  for (int i = 0; i < 100; ++i) {
    first.push(static_cast<SimTime>(i), [] {});
  }
  EXPECT_EQ(first.pending_count(), 100u);
  EventQueue second(first.release_storage());
  EXPECT_TRUE(second.empty());
  EXPECT_EQ(second.pending_count(), 0u);
  const EventId id = second.push(7, [] {});
  EXPECT_EQ(second.next_time(), 7);
  EXPECT_TRUE(second.cancel(id));
  EXPECT_TRUE(second.empty());
}

}  // namespace
}  // namespace vgrid::sim
