// Seeded structure-aware fuzzing of the grid wire protocol
// (grid/messages): randomly generated messages — with hostile field
// content, framing bytes, escape-sequence fragments, NULs, high bytes —
// must survive a serialize -> parse round trip intact, and every parser
// must reject truncated, mutated, or outright garbage frames by returning
// nullopt (or a well-formed struct), never by crashing or reading out of
// bounds. Deterministic by construction (util::Xoshiro256, fixed seed);
// the ASan/UBSan and TSan CI jobs turn "never UB" into a hard check.

#include <cstdint>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "grid/messages.hpp"
#include "grid/workunit.hpp"
#include "util/rng.hpp"

namespace vgrid {
namespace {

using util::Xoshiro256;

constexpr std::uint64_t kSeed = 0xf00df00dULL;
constexpr int kRounds = 400;

/// A random field value biased toward protocol-hostile content: framing
/// bytes ('|', '\n'), the escape introducer '%', complete and truncated
/// escape sequences, NUL and high bytes.
std::string hostile_string(Xoshiro256& rng) {
  static const char* const kFragments[] = {
      "|", "%", "\n", "%25", "%7C", "%0A", "%2", "%%", "||", "\r",
      "WORK", "SUBMIT", "WU", "NO_WORK", "ACK", "CREDIT",
  };
  std::string out;
  const int pieces = static_cast<int>(rng.below(8));
  for (int i = 0; i < pieces; ++i) {
    switch (rng.below(3)) {
      case 0:
        out += kFragments[rng.below(std::size(kFragments))];
        break;
      case 1:  // a short run of arbitrary bytes, NUL and >0x7f included
        for (std::uint64_t n = rng.below(6); n > 0; --n) {
          out += static_cast<char>(rng.below(256));
        }
        break;
      default:  // plain text
        for (std::uint64_t n = rng.below(10); n > 0; --n) {
          out += static_cast<char>('a' + rng.below(26));
        }
    }
  }
  return out;
}

/// Claimed CPU times survive the wire's %.6f formatting exactly when they
/// are multiples of 1/64 (dyadic rationals with few fraction bits).
double exact_cpu(Xoshiro256& rng) {
  return static_cast<double>(rng.below(1 << 20)) / 64.0;
}

void parse_with_everything(const std::string& line) {
  // None of these may crash, whatever `line` holds; results are free to
  // be nullopt or any well-formed struct.
  (void)grid::parse_work_request(line);
  (void)grid::parse_submit_request(line);
  (void)grid::parse_stats_request(line);
  (void)grid::parse_work_response(line);
  (void)grid::parse_submit_response(line);
  (void)grid::parse_stats_response(line);
  (void)grid::request_tag(line);
  (void)grid::unescape_field(line);
}

TEST(MessagesFuzz, EscapeRoundTripsArbitraryBytes) {
  Xoshiro256 rng(kSeed);
  for (int round = 0; round < kRounds; ++round) {
    std::string raw;
    for (std::uint64_t n = rng.below(64); n > 0; --n) {
      raw += static_cast<char>(rng.below(256));
    }
    const std::string escaped = grid::escape_field(raw);
    EXPECT_EQ(escaped.find('|'), std::string::npos);
    EXPECT_EQ(escaped.find('\n'), std::string::npos);
    EXPECT_EQ(grid::unescape_field(escaped), raw);
  }
}

TEST(MessagesFuzz, WorkRequestRoundTripsHostileFields) {
  Xoshiro256 rng(kSeed + 1);
  for (int round = 0; round < kRounds; ++round) {
    const grid::WorkRequest request{hostile_string(rng)};
    const auto parsed =
        grid::parse_work_request(grid::serialize(request));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->client_id, request.client_id);
  }
}

TEST(MessagesFuzz, SubmitRequestRoundTripsHostileFields) {
  Xoshiro256 rng(kSeed + 2);
  for (int round = 0; round < kRounds; ++round) {
    grid::SubmitRequest request;
    request.result.workunit_id = rng.next();
    request.result.client_id = hostile_string(rng);
    request.result.output = hostile_string(rng);
    request.result.cpu_seconds = exact_cpu(rng);
    const auto parsed =
        grid::parse_submit_request(grid::serialize(request));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->result.workunit_id, request.result.workunit_id);
    EXPECT_EQ(parsed->result.client_id, request.result.client_id);
    EXPECT_EQ(parsed->result.output, request.result.output);
    EXPECT_DOUBLE_EQ(parsed->result.cpu_seconds,
                     request.result.cpu_seconds);
  }
}

TEST(MessagesFuzz, WorkResponseRoundTripsHostileFields) {
  Xoshiro256 rng(kSeed + 3);
  for (int round = 0; round < kRounds; ++round) {
    grid::WorkResponse response;
    response.has_work = true;
    response.workunit.id = rng.next();
    response.workunit.kind = hostile_string(rng);
    response.workunit.payload = hostile_string(rng);
    response.workunit.replication =
        static_cast<int>(rng.uniform_int(1, 64));
    response.workunit.quorum = static_cast<int>(rng.uniform_int(1, 64));
    const auto parsed =
        grid::parse_work_response(grid::serialize(response));
    ASSERT_TRUE(parsed.has_value());
    ASSERT_TRUE(parsed->has_work);
    EXPECT_EQ(parsed->workunit.id, response.workunit.id);
    EXPECT_EQ(parsed->workunit.kind, response.workunit.kind);
    EXPECT_EQ(parsed->workunit.payload, response.workunit.payload);
    EXPECT_EQ(parsed->workunit.replication, response.workunit.replication);
    EXPECT_EQ(parsed->workunit.quorum, response.workunit.quorum);
  }
}

TEST(MessagesFuzz, StatsMessagesRoundTrip) {
  Xoshiro256 rng(kSeed + 4);
  for (int round = 0; round < kRounds; ++round) {
    const grid::StatsRequest request{hostile_string(rng)};
    const auto parsed_request =
        grid::parse_stats_request(grid::serialize(request));
    ASSERT_TRUE(parsed_request.has_value());
    EXPECT_EQ(parsed_request->client_id, request.client_id);

    grid::StatsResponse response;
    response.results_accepted = rng.below(1'000'000);
    response.cpu_seconds = exact_cpu(rng);
    response.credit = exact_cpu(rng);
    const auto parsed_response =
        grid::parse_stats_response(grid::serialize(response));
    ASSERT_TRUE(parsed_response.has_value());
    EXPECT_EQ(parsed_response->results_accepted,
              response.results_accepted);
    EXPECT_DOUBLE_EQ(parsed_response->cpu_seconds, response.cpu_seconds);
    EXPECT_DOUBLE_EQ(parsed_response->credit, response.credit);
  }
}

TEST(MessagesFuzz, TruncatedFramesNeverCrash) {
  Xoshiro256 rng(kSeed + 5);
  for (int round = 0; round < 64; ++round) {
    grid::SubmitRequest submit;
    submit.result.workunit_id = rng.next();
    submit.result.client_id = hostile_string(rng);
    submit.result.output = hostile_string(rng);
    submit.result.cpu_seconds = exact_cpu(rng);
    grid::WorkResponse work;
    work.has_work = true;
    work.workunit.kind = hostile_string(rng);
    work.workunit.payload = hostile_string(rng);
    const std::string frames[] = {
        grid::serialize(grid::WorkRequest{hostile_string(rng)}),
        grid::serialize(submit),
        grid::serialize(work),
        grid::serialize(grid::SubmitResponse{true, true}),
        grid::serialize(grid::StatsResponse{7, 1.5, 0.5}),
    };
    for (const std::string& frame : frames) {
      for (std::size_t len = 0; len <= frame.size(); ++len) {
        parse_with_everything(frame.substr(0, len));
      }
    }
  }
}

TEST(MessagesFuzz, MutatedFramesParseOrRejectWithoutUb) {
  Xoshiro256 rng(kSeed + 6);
  for (int round = 0; round < kRounds; ++round) {
    grid::SubmitRequest submit;
    submit.result.workunit_id = rng.next();
    submit.result.client_id = hostile_string(rng);
    submit.result.output = hostile_string(rng);
    submit.result.cpu_seconds = exact_cpu(rng);
    std::string frame = grid::serialize(submit);
    // A handful of random point mutations: substitute, insert, delete.
    for (int mutation = 0; mutation < 4 && !frame.empty(); ++mutation) {
      const std::size_t at = rng.below(frame.size());
      switch (rng.below(3)) {
        case 0:
          frame[at] = static_cast<char>(rng.below(256));
          break;
        case 1:
          frame.insert(at, 1, static_cast<char>(rng.below(256)));
          break;
        default:
          frame.erase(at, 1);
      }
    }
    parse_with_everything(frame);
  }
}

TEST(MessagesFuzz, RandomGarbageIsRejectedWithoutUb) {
  Xoshiro256 rng(kSeed + 7);
  for (int round = 0; round < kRounds; ++round) {
    std::string garbage;
    for (std::uint64_t n = rng.below(96); n > 0; --n) {
      garbage += static_cast<char>(rng.below(256));
    }
    parse_with_everything(garbage);
    // The dispatch tag on garbage is either empty or one of the three
    // request verbs (when the garbage legitimately starts with one).
    const std::string tag = grid::request_tag(garbage);
    EXPECT_TRUE(tag.empty() || tag == "WORK" || tag == "SUBMIT" ||
                tag == "STATS")
        << tag;
  }
}

}  // namespace
}  // namespace vgrid
