// Tests for the extension modules: VM image deployment strategies,
// volunteer churn / checkpointing, migration cost models, and multi-VM
// stacking.

#include <gtest/gtest.h>

#include "core/availability.hpp"
#include "core/host_impact.hpp"
#include "grid/deployment.hpp"
#include "util/error.hpp"
#include "vmm/migration.hpp"
#include "vmm/profile.hpp"

namespace vgrid {
namespace {

// ---- deployment -----------------------------------------------------------------

grid::DeploymentConfig small_deploy() {
  grid::DeploymentConfig config;
  config.image_bytes = 1'000'000'000;
  config.server_uplink_bps = 10e6;
  config.volunteer_down_bps = 1e6;
  config.volunteer_up_bps = 0.2e6;
  config.volunteers = 100;
  return config;
}

TEST(Deployment, CentralScalesLinearlyWithVolunteers) {
  grid::DeploymentConfig config = small_deploy();
  const auto at_100 = grid::estimate_deployment(
      config, grid::DistributionStrategy::kCentralServer);
  config.volunteers = 1000;
  const auto at_1000 = grid::estimate_deployment(
      config, grid::DistributionStrategy::kCentralServer);
  EXPECT_NEAR(at_1000.makespan_seconds / at_100.makespan_seconds, 10.0,
              0.5);
}

TEST(Deployment, FewVolunteersAreDownlinkBound) {
  grid::DeploymentConfig config = small_deploy();
  config.volunteers = 2;  // server uplink easily covers both
  const auto estimate = grid::estimate_deployment(
      config, grid::DistributionStrategy::kCentralServer);
  EXPECT_NEAR(estimate.makespan_seconds,
              static_cast<double>(config.image_bytes) /
                  config.volunteer_down_bps,
              1.0);
}

TEST(Deployment, MirrorsBeatCentralAtScale) {
  const grid::DeploymentConfig config = small_deploy();
  const auto central = grid::estimate_deployment(
      config, grid::DistributionStrategy::kCentralServer);
  const auto mirrored = grid::estimate_deployment(
      config, grid::DistributionStrategy::kMirrored);
  EXPECT_LT(mirrored.makespan_seconds, central.makespan_seconds);
}

TEST(Deployment, P2pMakespanNearlyScaleFree) {
  grid::DeploymentConfig config = small_deploy();
  const auto at_100 = grid::estimate_deployment(
      config, grid::DistributionStrategy::kPeerToPeer);
  config.volunteers = 10000;
  const auto at_10k = grid::estimate_deployment(
      config, grid::DistributionStrategy::kPeerToPeer);
  EXPECT_LT(at_10k.makespan_seconds, at_100.makespan_seconds * 10.0);
  EXPECT_LT(at_10k.makespan_seconds / at_100.makespan_seconds, 6.0);
}

TEST(Deployment, P2pMinimizesServerLoad) {
  const grid::DeploymentConfig config = small_deploy();
  const auto estimates = grid::compare_strategies(config);
  ASSERT_EQ(estimates.size(), 3u);
  const double central_load = estimates[0].server_bytes_sent;
  const double p2p_load = estimates[2].server_bytes_sent;
  EXPECT_DOUBLE_EQ(p2p_load, static_cast<double>(config.image_bytes));
  EXPECT_GT(central_load, p2p_load * 50);
}

TEST(Deployment, P2pNeverBeatsDownlinkBound) {
  const grid::DeploymentConfig config = small_deploy();
  const auto estimate = grid::estimate_deployment(
      config, grid::DistributionStrategy::kPeerToPeer);
  EXPECT_GE(estimate.makespan_seconds,
            static_cast<double>(config.image_bytes) /
                config.volunteer_down_bps * 0.999);
}

TEST(Deployment, RejectsBadConfig) {
  grid::DeploymentConfig config = small_deploy();
  config.volunteers = 0;
  EXPECT_THROW(grid::estimate_deployment(
                   config, grid::DistributionStrategy::kCentralServer),
               util::ConfigError);
  config = small_deploy();
  config.p2p_efficiency = 1.5;
  EXPECT_THROW(grid::estimate_deployment(
                   config, grid::DistributionStrategy::kPeerToPeer),
               util::ConfigError);
}

// ---- availability / checkpointing ---------------------------------------------------

core::AvailabilityConfig quick_churn() {
  core::AvailabilityConfig config;
  config.trials = 400;
  return config;
}

TEST(Availability, CheckpointingBeatsLegacyUnderChurn) {
  core::AvailabilityConfig config = quick_churn();
  config.checkpointing_enabled = true;
  const auto with = core::simulate_churn(config);
  config.checkpointing_enabled = false;
  const auto without = core::simulate_churn(config);
  EXPECT_LT(with.completion_wall_seconds.mean,
            without.completion_wall_seconds.mean * 0.7);
  EXPECT_LT(with.cpu_overhead_factor, without.cpu_overhead_factor);
}

TEST(Availability, StableVolunteerFinishesInOnePass) {
  core::AvailabilityConfig config = quick_churn();
  config.mean_session_seconds = 1000.0 * config.workunit_cpu_seconds;
  const auto result = core::simulate_churn(config);
  EXPECT_LT(result.mean_interruptions, 0.1);
  EXPECT_NEAR(result.cpu_overhead_factor, 1.0, 0.05);
}

TEST(Availability, OverheadFactorAtLeastOne) {
  const auto result = core::simulate_churn(quick_churn());
  EXPECT_GE(result.cpu_overhead_factor, 1.0);
}

TEST(Availability, SweepShowsUShapedTradeOff) {
  core::AvailabilityConfig config = quick_churn();
  const auto sweep = core::sweep_checkpoint_interval(
      config, {30.0, 300.0, 9600.0});
  ASSERT_EQ(sweep.size(), 3u);
  const double frequent = sweep[0].second.completion_wall_seconds.mean;
  const double moderate = sweep[1].second.completion_wall_seconds.mean;
  const double rare = sweep[2].second.completion_wall_seconds.mean;
  EXPECT_LT(moderate, frequent);
  EXPECT_LT(moderate, rare);
}

TEST(Availability, DeterministicForSameSeed) {
  const auto a = core::simulate_churn(quick_churn());
  const auto b = core::simulate_churn(quick_churn());
  EXPECT_DOUBLE_EQ(a.completion_wall_seconds.mean,
                   b.completion_wall_seconds.mean);
}

TEST(Availability, RejectsBadConfig) {
  core::AvailabilityConfig config = quick_churn();
  config.workunit_cpu_seconds = 0;
  EXPECT_THROW(core::simulate_churn(config), util::ConfigError);
  config = quick_churn();
  config.weibull_shape = 0.0;
  EXPECT_THROW(core::simulate_churn(config), util::ConfigError);
}

TEST(Availability, WeibullSessionsSupported) {
  core::AvailabilityConfig config = quick_churn();
  config.session_distribution = core::SessionDistribution::kWeibull;
  config.weibull_shape = 0.6;
  const auto result = core::simulate_churn(config);
  EXPECT_GT(result.completion_wall_seconds.mean, 0.0);
  EXPECT_GE(result.cpu_overhead_factor, 1.0);
}

TEST(Availability, HeavyTailedSessionsHurtLegacyMore) {
  // With shape < 1 there are many short sessions: a legacy app that
  // restarts from scratch suffers disproportionately vs checkpointing.
  core::AvailabilityConfig config = quick_churn();
  config.session_distribution = core::SessionDistribution::kWeibull;
  config.weibull_shape = 0.5;

  config.checkpointing_enabled = true;
  const double with_ckpt =
      core::simulate_churn(config).completion_wall_seconds.median;
  config.checkpointing_enabled = false;
  const double without_ckpt =
      core::simulate_churn(config).completion_wall_seconds.median;
  EXPECT_GT(without_ckpt, with_ckpt * 1.5);
}

TEST(Availability, WeibullShapeOneMatchesExponentialClosely) {
  // Weibull(k=1) *is* the exponential; the two paths must agree
  // statistically.
  core::AvailabilityConfig config = quick_churn();
  config.trials = 1500;
  config.session_distribution = core::SessionDistribution::kExponential;
  const double exponential =
      core::simulate_churn(config).completion_wall_seconds.mean;
  config.session_distribution = core::SessionDistribution::kWeibull;
  config.weibull_shape = 1.0;
  const double weibull =
      core::simulate_churn(config).completion_wall_seconds.mean;
  EXPECT_NEAR(weibull / exponential, 1.0, 0.12);
}

// ---- migration -------------------------------------------------------------------------

TEST(Migration, ColdDowntimeEqualsTotal) {
  const vmm::MigrationConfig config;
  const auto estimate = vmm::estimate_cold_migration(config);
  EXPECT_DOUBLE_EQ(estimate.total_seconds, estimate.downtime_seconds);
  EXPECT_EQ(estimate.bytes_transferred, config.ram_bytes);
}

TEST(Migration, LiveSlashesDowntime) {
  const vmm::MigrationConfig config;
  const auto cold = vmm::estimate_cold_migration(config);
  const auto live = vmm::estimate_live_migration(config);
  EXPECT_LT(live.downtime_seconds, cold.downtime_seconds / 5.0);
  EXPECT_GT(live.bytes_transferred, cold.bytes_transferred);
  EXPECT_TRUE(live.converged);
}

TEST(Migration, HighDirtyRateFailsToConverge) {
  vmm::MigrationConfig config;
  config.dirty_rate_bps = config.link_bps;  // dirties as fast as it copies
  const auto live = vmm::estimate_live_migration(config);
  EXPECT_FALSE(live.converged);
  EXPECT_EQ(live.precopy_rounds, config.max_precopy_rounds);
}

TEST(Migration, ZeroDirtyRateConvergesInOneRound) {
  vmm::MigrationConfig config;
  config.dirty_rate_bps = 0.0;
  const auto live = vmm::estimate_live_migration(config);
  EXPECT_EQ(live.precopy_rounds, 1);
  EXPECT_NEAR(live.downtime_seconds, config.restore_overhead_seconds,
              1e-9);
}

TEST(Migration, FasterLinkShrinksEverything) {
  vmm::MigrationConfig slow;
  vmm::MigrationConfig fast = slow;
  fast.link_bps = slow.link_bps * 10.0;
  const auto a = vmm::estimate_live_migration(slow);
  const auto b = vmm::estimate_live_migration(fast);
  EXPECT_LT(b.total_seconds, a.total_seconds);
  EXPECT_LE(b.downtime_seconds, a.downtime_seconds);
}

TEST(Migration, RejectsBadConfig) {
  vmm::MigrationConfig config;
  config.link_bps = 0;
  EXPECT_THROW(vmm::estimate_live_migration(config), util::ConfigError);
}

// ---- multi-VM stacking --------------------------------------------------------------------

TEST(MultiVm, EachAdditionalVmCostsMore) {
  core::HostImpactConfig config;
  config.runner.repetitions = 2;
  config.runner.input_jitter = 0.0;
  core::HostImpactExperiment experiment(config);
  const auto profile = vmm::profiles::virtualbox();
  const auto one = experiment.run_7z(2, &profile, 1);
  const auto two = experiment.run_7z(2, &profile, 2);
  const auto three = experiment.run_7z(2, &profile, 3);
  EXPECT_GT(one.cpu_percent, two.cpu_percent);
  EXPECT_GT(two.cpu_percent, three.cpu_percent);
}

TEST(MultiVm, RamLimitsVmCount) {
  // A fourth 300 MB VM cannot commit on the 1 GB host.
  core::HostImpactConfig config;
  config.runner.repetitions = 1;
  core::HostImpactExperiment experiment(config);
  const auto profile = vmm::profiles::virtualpc();
  EXPECT_THROW(experiment.run_7z(1, &profile, 4), util::ConfigError);
}

TEST(MultiVm, RejectsZeroCount) {
  core::HostImpactExperiment experiment;
  const auto profile = vmm::profiles::qemu();
  EXPECT_THROW(experiment.run_7z(1, &profile, 0), util::ConfigError);
}

}  // namespace
}  // namespace vgrid
