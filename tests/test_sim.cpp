// Unit tests for the discrete-event kernel: event queue ordering and
// cancellation, simulator execution modes, and tracing.

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "util/error.hpp"

namespace vgrid::sim {
namespace {

// ---- EventQueue ---------------------------------------------------------------

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.push(30, [&] { order.push_back(3); });
  queue.push(10, [&] { order.push_back(1); });
  queue.push(20, [&] { order.push_back(2); });
  while (!queue.empty()) {
    queue.pop().callback();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.push(100, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsDelivery) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.push(10, [&] { fired = true; });
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue queue;
  const EventId id = queue.push(10, [] {});
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue queue;
  EXPECT_FALSE(queue.cancel(424242));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue queue;
  const EventId early = queue.push(10, [] {});
  queue.push(20, [] {});
  queue.cancel(early);
  EXPECT_EQ(queue.next_time(), 20);
}

#if defined(VGRID_AUDITS_ENABLED)
// Empty-queue pop()/next_time() are precondition violations. Under audits
// (the default build) they fail loudly with an AuditError naming the
// misuse; with audits compiled out the behavior is undefined, so the
// audited build is the only place this contract is testable.
TEST(EventQueue, PopOnEmptyFailsAudit) {
  EventQueue queue;
  EXPECT_THROW(queue.pop(), util::AuditError);
  EXPECT_THROW(queue.next_time(), util::AuditError);
}

TEST(EventQueue, PopAfterDrainingFailsAudit) {
  EventQueue queue;
  queue.push(1, [] {});
  queue.pop().callback();
  EXPECT_TRUE(queue.empty());
  EXPECT_THROW(queue.pop(), util::AuditError);
}
#endif

TEST(EventQueue, PushBulkMatchesIndividualPushes) {
  EventQueue queue;
  const SimTime times[] = {30, 10, 10, 20};
  EventId ids[4] = {};
  std::vector<int> order;
  queue.push_bulk(
      times, 4, [&order](std::size_t i) { return [&order, i] { order.push_back(static_cast<int>(i)); }; },
      ids);
  EXPECT_EQ(queue.pending_count(), 4u);
  for (const EventId id : ids) EXPECT_NE(id, kInvalidEvent);
  EXPECT_TRUE(queue.cancel(ids[2]));  // second event at t=10
  while (!queue.empty()) queue.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 0}));
}

TEST(EventQueue, SlotReuseInvalidatesOldHandles) {
  EventQueue queue;
  const EventId first = queue.push(10, [] {});
  queue.pop().callback();
  // The arena reuses the slot; the stale handle's generation no longer
  // matches, so cancelling it must not kill the new event.
  const EventId second = queue.push(20, [] {});
  EXPECT_NE(first, second);
  EXPECT_FALSE(queue.cancel(first));
  EXPECT_EQ(queue.pending_count(), 1u);
  EXPECT_TRUE(queue.cancel(second));
}

TEST(EventQueue, PendingCountTracksLiveEvents) {
  EventQueue queue;
  const EventId a = queue.push(1, [] {});
  queue.push(2, [] {});
  EXPECT_EQ(queue.pending_count(), 2u);
  queue.cancel(a);
  EXPECT_EQ(queue.pending_count(), 1u);
}

// ---- Simulator -------------------------------------------------------------------

TEST(Simulator, RunsEventsAndAdvancesClock) {
  Simulator simulator;
  std::vector<SimTime> seen;
  simulator.schedule(5, [&] { seen.push_back(simulator.now()); });
  simulator.schedule(2, [&] { seen.push_back(simulator.now()); });
  const auto processed = simulator.run();
  EXPECT_EQ(processed, 2u);
  EXPECT_EQ(seen, (std::vector<SimTime>{2, 5}));
  EXPECT_EQ(simulator.now(), 5);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator simulator;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) simulator.schedule(1, recurse);
  };
  simulator.schedule(1, recurse);
  simulator.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(simulator.now(), 10);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator simulator;
  int fired = 0;
  for (SimTime t = 10; t <= 100; t += 10) {
    simulator.schedule(t, [&] { ++fired; });
  }
  simulator.run_until(50);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(simulator.now(), 50);
  simulator.run();
  EXPECT_EQ(fired, 10);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator simulator;
  simulator.run_until(1000);
  EXPECT_EQ(simulator.now(), 1000);
}

TEST(Simulator, StepProcessesExactlyN) {
  Simulator simulator;
  int fired = 0;
  for (int i = 1; i <= 5; ++i) {
    simulator.schedule(i, [&] { ++fired; });
  }
  EXPECT_EQ(simulator.step(2), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(simulator.step(10), 3u);
}

TEST(Simulator, StopHaltsRun) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule(1, [&] {
    ++fired;
    simulator.stop();
  });
  simulator.schedule(2, [&] { ++fired; });
  simulator.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(simulator.stopped());
  simulator.clear_stop();
  simulator.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator simulator;
  bool fired = false;
  const EventId id = simulator.schedule(5, [&] { fired = true; });
  EXPECT_TRUE(simulator.cancel(id));
  simulator.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator simulator;
  EXPECT_THROW(simulator.schedule(-1, [] {}), util::SimulationError);
}

TEST(Simulator, ScheduleAtPastThrows) {
  Simulator simulator;
  simulator.schedule(10, [] {});
  simulator.run();
  EXPECT_EQ(simulator.now(), 10);
  EXPECT_THROW(simulator.schedule_at(5, [] {}), util::SimulationError);
}

TEST(Simulator, ProcessedEventCounter) {
  Simulator simulator;
  for (int i = 0; i < 7; ++i) simulator.schedule(i + 1, [] {});
  simulator.run();
  EXPECT_EQ(simulator.processed_events(), 7u);
}

// ---- Tracer -----------------------------------------------------------------------

TEST(Tracer, DisabledByDefault) {
  Tracer tracer;
  tracer.record(1, TraceKind::kSchedule, "t0");
  EXPECT_TRUE(tracer.records().empty());
}

TEST(Tracer, RecordsWhenEnabled) {
  Tracer tracer;
  tracer.enable(true);
  tracer.record(1, TraceKind::kSchedule, "t0", "core 0");
  tracer.record(2, TraceKind::kDiskOp, "disk", "read 4096 bytes");
  ASSERT_EQ(tracer.records().size(), 2u);
  EXPECT_EQ(tracer.count(TraceKind::kSchedule), 1u);
  EXPECT_EQ(tracer.count(TraceKind::kDiskOp), 1u);
  EXPECT_EQ(tracer.count(TraceKind::kNetOp), 0u);
}

TEST(Tracer, DumpContainsSubjects) {
  Tracer tracer;
  tracer.enable(true);
  tracer.record(1'000'000'000, TraceKind::kVmExit, "vm0", "io port");
  const std::string dump = tracer.dump();
  EXPECT_NE(dump.find("vm0"), std::string::npos);
  EXPECT_NE(dump.find("vmexit"), std::string::npos);
}

TEST(Tracer, ClearEmptiesRecords) {
  Tracer tracer;
  tracer.enable(true);
  tracer.record(1, TraceKind::kWake, "x");
  tracer.clear();
  EXPECT_TRUE(tracer.records().empty());
}

}  // namespace
}  // namespace vgrid::sim
