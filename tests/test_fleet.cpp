// Tests for vgrid::fleet — the population-scale layer.
//
// Four families:
//  - rejection: every malformed [fleet] distribution spec is a
//    util::ConfigError with a "<source>:<line>:" diagnostic (mirroring
//    test_scenario's fixtures for the base dialect);
//  - sampling: per-host draws are a pure function of (seed, host index) —
//    visit order, sharding and interleaving cannot change them — and the
//    empirical quantiles of large samples match the declared
//    distributions;
//  - determinism: run_fleet's summary and metrics snapshot are
//    byte-identical for any jobs value;
//  - selfcheck: the aggregate cross-check passes on a clean run and
//    catches both seeded aggregation mutations (the in-process half of
//    the fleet.finds.* ctests).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "scenario/scenario.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace vgrid {
namespace {

// Expect parse() to throw a ConfigError whose message carries the given
// fragment (and the source:line prefix when `line` > 0).
void expect_rejected(const std::string& text, const std::string& fragment,
                     int line = 0) {
  try {
    (void)scenario::parse(text, "test.scn");
    FAIL() << "expected ConfigError containing '" << fragment << "'";
  } catch (const util::ConfigError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(fragment), std::string::npos) << what;
    EXPECT_EQ(what.rfind("test.scn:", 0), 0u) << what;
    if (line > 0) {
      EXPECT_NE(what.find("test.scn:" + std::to_string(line) + ":"),
                std::string::npos)
          << what;
    }
  }
}

/// A valid [fleet] section, one key per line so a fixture can replace a
/// single line and assert its exact line number (the body starts on
/// line 10 of scenario_with()'s output).
struct FleetLines {
  std::string hosts = "hosts = 100";
  std::string tiers = "tiers = core2duo:2 pentium4:1";
  std::string profiles = "profiles = vmplayer:3 qemu:1";
  std::string priorities = "priorities = idle:4 normal:1";
  std::string availability = "availability = uniform 0.35 0.95";
  std::string workunit = "workunit_gigaops = normal 3 0.8 0.5 8";
};
constexpr int kHostsLine = 10;
constexpr int kTiersLine = 11;
constexpr int kProfilesLine = 12;
constexpr int kPrioritiesLine = 13;
constexpr int kAvailabilityLine = 14;
constexpr int kWorkunitLine = 15;

std::string scenario_with(const FleetLines& fleet) {
  std::string text =
      "[scenario]\nname = mini\n"
      "[machine]\n[os]\n[workloads]\n[sweep]\n"
      "[vmm]\nprofiles = vmplayer qemu\n"
      "[fleet]\n";
  for (const std::string* line :
       {&fleet.hosts, &fleet.tiers, &fleet.profiles, &fleet.priorities,
        &fleet.availability, &fleet.workunit}) {
    if (!line->empty()) text += *line + "\n";
  }
  return text;
}

TEST(FleetParse, AcceptsTheValidFixtureAndFillsTheSpec) {
  const scenario::Scenario parsed =
      scenario::parse(scenario_with(FleetLines{}), "test.scn");
  ASSERT_TRUE(parsed.fleet.has_value());
  const scenario::FleetSpec& spec = *parsed.fleet;
  EXPECT_EQ(spec.hosts, 100u);
  ASSERT_EQ(spec.tiers.items.size(), 2u);
  // Sorted by name, not declaration order.
  EXPECT_EQ(spec.tiers.items[0].name, "core2duo");
  EXPECT_EQ(spec.tiers.items[1].name, "pentium4");
  EXPECT_DOUBLE_EQ(spec.tiers.total_weight, 3.0);
  EXPECT_EQ(spec.availability.kind, scenario::DistSpec::Kind::kUniform);
  EXPECT_EQ(spec.workunit_gigaops.kind, scenario::DistSpec::Kind::kNormal);
}

// --- rejection: distribution grammar -----------------------------------------

TEST(FleetReject, UnknownDistributionKind) {
  FleetLines f;
  f.availability = "availability = gamma 1 2";
  expect_rejected(scenario_with(f), "unknown distribution 'gamma'",
                  kAvailabilityLine);
}

TEST(FleetReject, ConstantWithoutValue) {
  FleetLines f;
  f.availability = "availability = constant";
  expect_rejected(scenario_with(f), "wants 'constant VALUE'",
                  kAvailabilityLine);
}

TEST(FleetReject, UniformWithOneArgument) {
  FleetLines f;
  f.availability = "availability = uniform 0.5";
  expect_rejected(scenario_with(f), "wants 'uniform LO HI'",
                  kAvailabilityLine);
}

TEST(FleetReject, UniformLoAboveHi) {
  FleetLines f;
  f.availability = "availability = uniform 0.9 0.5";
  expect_rejected(scenario_with(f), "uniform LO 0.9 exceeds HI 0.5",
                  kAvailabilityLine);
}

TEST(FleetReject, NormalWithThreeArguments) {
  FleetLines f;
  f.availability = "availability = normal 0.5 0.1 0.2";
  expect_rejected(scenario_with(f), "wants 'normal MEAN SIGMA LO HI'",
                  kAvailabilityLine);
}

TEST(FleetReject, NormalNegativeSigma) {
  FleetLines f;
  f.availability = "availability = normal 0.5 -0.1 0.2 0.9";
  expect_rejected(scenario_with(f), "out of range", kAvailabilityLine);
}

TEST(FleetReject, NormalMeanOutsideClampRange) {
  FleetLines f;
  f.availability = "availability = normal 0.9 0.1 0.95 0.99";
  expect_rejected(scenario_with(f),
                  "normal MEAN 0.9 outside clamp range [0.95, 0.99]",
                  kAvailabilityLine);
}

TEST(FleetReject, NormalClampLoAboveHi) {
  FleetLines f;
  f.availability = "availability = normal 0.5 0.1 0.9 0.2";
  expect_rejected(scenario_with(f), "normal clamp LO 0.9 exceeds HI 0.2",
                  kAvailabilityLine);
}

TEST(FleetReject, AvailabilityBelowLegalRange) {
  FleetLines f;
  f.availability = "availability = uniform 0 0.9";
  expect_rejected(scenario_with(f), "out of range", kAvailabilityLine);
}

TEST(FleetReject, AvailabilityAboveOne) {
  FleetLines f;
  f.availability = "availability = uniform 0.5 1.5";
  expect_rejected(scenario_with(f), "out of range", kAvailabilityLine);
}

TEST(FleetReject, WorkunitGigaopsZero) {
  FleetLines f;
  f.workunit = "workunit_gigaops = constant 0";
  expect_rejected(scenario_with(f), "out of range", kWorkunitLine);
}

TEST(FleetReject, DistributionValueNotANumber) {
  FleetLines f;
  f.availability = "availability = constant x";
  expect_rejected(scenario_with(f), "'x' is not a finite number",
                  kAvailabilityLine);
}

// --- rejection: weighted choices ---------------------------------------------

TEST(FleetReject, TierWithoutWeight) {
  FleetLines f;
  f.tiers = "tiers = core2duo";
  expect_rejected(scenario_with(f), "'core2duo' is not name:weight",
                  kTiersLine);
}

TEST(FleetReject, TierWithEmptyName) {
  FleetLines f;
  f.tiers = "tiers = :2";
  expect_rejected(scenario_with(f), "is not name:weight", kTiersLine);
}

TEST(FleetReject, TierWithEmptyWeight) {
  FleetLines f;
  f.tiers = "tiers = core2duo:";
  expect_rejected(scenario_with(f), "is not name:weight", kTiersLine);
}

TEST(FleetReject, TierWithZeroWeight) {
  FleetLines f;
  f.tiers = "tiers = core2duo:0";
  expect_rejected(scenario_with(f), "weight of 'core2duo' must be > 0",
                  kTiersLine);
}

TEST(FleetReject, TierWithNegativeWeight) {
  FleetLines f;
  f.tiers = "tiers = core2duo:-1";
  expect_rejected(scenario_with(f), "out of range", kTiersLine);
}

TEST(FleetReject, TierListedTwice) {
  FleetLines f;
  f.tiers = "tiers = core2duo:1 core2duo:2";
  expect_rejected(scenario_with(f), "'core2duo' listed twice", kTiersLine);
}

TEST(FleetReject, UnknownTierName) {
  FleetLines f;
  f.tiers = "tiers = athlon:1";
  expect_rejected(scenario_with(f), "unknown tier 'athlon'", kTiersLine);
}

TEST(FleetReject, UnknownPriorityName) {
  FleetLines f;
  f.priorities = "priorities = urgent:1";
  expect_rejected(scenario_with(f), "unknown priority 'urgent'",
                  kPrioritiesLine);
}

TEST(FleetReject, ProfileNotListedInVmm) {
  FleetLines f;
  f.profiles = "profiles = virtualbox:1";
  expect_rejected(scenario_with(f),
                  "[fleet] profiles: 'virtualbox' is not listed in [vmm] "
                  "profiles");
}

// --- rejection: scalar keys and structure ------------------------------------

TEST(FleetReject, HostsZero) {
  FleetLines f;
  f.hosts = "hosts = 0";
  expect_rejected(scenario_with(f), "out of range [1, 10000000]",
                  kHostsLine);
}

TEST(FleetReject, HostsAboveCap) {
  FleetLines f;
  f.hosts = "hosts = 20000000";
  expect_rejected(scenario_with(f), "out of range [1, 10000000]",
                  kHostsLine);
}

TEST(FleetReject, HostsNotAnInteger) {
  FleetLines f;
  f.hosts = "hosts = many";
  expect_rejected(scenario_with(f), "'many' is not an unsigned integer",
                  kHostsLine);
}

TEST(FleetReject, MissingHosts) {
  FleetLines f;
  f.hosts.clear();
  expect_rejected(scenario_with(f), "[fleet] missing required key 'hosts'");
}

TEST(FleetReject, MissingTiers) {
  FleetLines f;
  f.tiers.clear();
  expect_rejected(scenario_with(f), "[fleet] missing required key 'tiers'");
}

TEST(FleetReject, MissingProfiles) {
  FleetLines f;
  f.profiles.clear();
  expect_rejected(scenario_with(f),
                  "[fleet] missing required key 'profiles'");
}

TEST(FleetReject, MissingPriorities) {
  FleetLines f;
  f.priorities.clear();
  expect_rejected(scenario_with(f),
                  "[fleet] missing required key 'priorities'");
}

TEST(FleetReject, MissingAvailability) {
  FleetLines f;
  f.availability.clear();
  expect_rejected(scenario_with(f),
                  "[fleet] missing required key 'availability'");
}

TEST(FleetReject, MissingWorkunitGigaops) {
  FleetLines f;
  f.workunit.clear();
  expect_rejected(scenario_with(f),
                  "[fleet] missing required key 'workunit_gigaops'");
}

TEST(FleetReject, UnknownKeyInFleet) {
  FleetLines f;
  f.workunit = "color = red";
  expect_rejected(scenario_with(f), "unknown key 'color' in [fleet]",
                  kWorkunitLine);
}

TEST(FleetReject, DuplicateKeyInFleet) {
  expect_rejected(scenario_with(FleetLines{}) + "hosts = 5\n",
                  "duplicate key 'hosts' in [fleet]", 16);
}

TEST(FleetReject, ProfileRamDoesNotFitTierMachine) {
  // A 600 MiB guest fits the scenario's own 1 GiB machine (so the base
  // sweep validation passes) but not the 512 MiB pentium4 tier — only
  // the fleet's per-tier cross-check can catch that pairing.
  const std::string text =
      "[scenario]\nname = mini\n"
      "[machine]\n[os]\n[workloads]\n[sweep]\n"
      "[vmm]\nprofiles = big\n"
      "[profile big]\nnat_cap_mbps = 100\nram_mib = 600\n"
      "[fleet]\n"
      "hosts = 10\n"
      "tiers = pentium4:1\n"
      "profiles = big:1\n"
      "priorities = idle:1\n"
      "availability = constant 0.9\n"
      "workunit_gigaops = constant 1\n";
  expect_rejected(text,
                  "[fleet] profile 'big' needs 600 MB guest RAM but tier "
                  "'pentium4' only has 512 MB");
}

// --- sampling: determinism and visit-order independence ----------------------

void expect_same_host(const fleet::HostConfig& a,
                      const fleet::HostConfig& b, std::uint64_t index) {
  EXPECT_EQ(a.tier, b.tier) << "host " << index;
  EXPECT_EQ(a.profile, b.profile) << "host " << index;
  EXPECT_EQ(a.priority, b.priority) << "host " << index;
  EXPECT_EQ(a.availability, b.availability) << "host " << index;
  EXPECT_EQ(a.workunit_gigaops, b.workunit_gigaops) << "host " << index;
}

TEST(FleetSampler, HostDrawsAreVisitOrderIndependent) {
  const scenario::Scenario parsed =
      scenario::parse(scenario_with(FleetLines{}), "test.scn");
  const scenario::FleetSpec& spec = *parsed.fleet;
  constexpr std::uint64_t kHosts = 257;  // not a multiple of any shard size

  std::vector<fleet::HostConfig> forward;
  for (std::uint64_t i = 0; i < kHosts; ++i) {
    forward.push_back(fleet::sample_host(spec, spec.seed, i));
  }
  // Reverse order.
  for (std::uint64_t i = kHosts; i-- > 0;) {
    expect_same_host(fleet::sample_host(spec, spec.seed, i), forward[i], i);
  }
  // Strided "sharded" order: every 16th host per pass.
  for (std::uint64_t start = 0; start < 16; ++start) {
    for (std::uint64_t i = start; i < kHosts; i += 16) {
      expect_same_host(fleet::sample_host(spec, spec.seed, i), forward[i],
                       i);
    }
  }
  // Different seeds give different populations (spot check: at least one
  // host differs in some sampled field).
  bool any_different = false;
  for (std::uint64_t i = 0; i < kHosts && !any_different; ++i) {
    const fleet::HostConfig other = fleet::sample_host(spec, 99, i);
    any_different = other.tier != forward[i].tier ||
                    other.availability != forward[i].availability;
  }
  EXPECT_TRUE(any_different);
}

TEST(FleetSampler, ConstantDistributionConsumesNoRandomness) {
  scenario::DistSpec constant;
  constant.kind = scenario::DistSpec::Kind::kConstant;
  constant.a = 0.5;
  util::Rng with_constant(42), fresh(42);
  EXPECT_EQ(fleet::sample(constant, with_constant), 0.5);
  // The next draw must be what a fresh same-seeded Rng produces first.
  EXPECT_EQ(with_constant.uniform01(), fresh.uniform01());
}

TEST(FleetSampler, PickFromEmptyChoiceThrows) {
  scenario::WeightedChoice empty;
  util::Rng rng(1);
  EXPECT_THROW((void)fleet::pick(empty, rng), util::ConfigError);
}

// --- sampling: empirical quantiles vs the declared distributions -------------

TEST(FleetSampler, UniformEmpiricalQuantilesMatchTheSpec) {
  scenario::DistSpec uniform;
  uniform.kind = scenario::DistSpec::Kind::kUniform;
  uniform.a = 0.35;
  uniform.b = 0.95;
  util::Rng rng(0x5eed);
  constexpr int kDraws = 100'000;
  std::vector<double> values;
  values.reserve(kDraws);
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double value = fleet::sample(uniform, rng);
    ASSERT_GE(value, 0.35);
    ASSERT_LT(value, 0.95);
    values.push_back(value);
    sum += value;
  }
  EXPECT_NEAR(sum / kDraws, 0.65, 0.005);
  std::sort(values.begin(), values.end());
  // Declared quantiles of U(0.35, 0.95): q -> 0.35 + 0.6q.
  EXPECT_NEAR(values[kDraws / 10], 0.41, 0.01);
  EXPECT_NEAR(values[kDraws / 2], 0.65, 0.01);
  EXPECT_NEAR(values[kDraws * 9 / 10], 0.89, 0.01);
}

TEST(FleetSampler, ClampedNormalEmpiricalMomentsMatchTheSpec) {
  scenario::DistSpec normal;
  normal.kind = scenario::DistSpec::Kind::kNormal;
  normal.a = 3.0;   // mean
  normal.b = 0.8;   // sigma
  normal.lo = 0.5;
  normal.hi = 8.0;
  util::Rng rng(0xcafe);
  constexpr int kDraws = 100'000;
  std::vector<double> values;
  values.reserve(kDraws);
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double value = fleet::sample(normal, rng);
    ASSERT_GE(value, 0.5);
    ASSERT_LE(value, 8.0);
    values.push_back(value);
    sum += value;
  }
  // The clamp is > 3 sigma out on both sides, so the moments survive.
  EXPECT_NEAR(sum / kDraws, 3.0, 0.02);
  std::sort(values.begin(), values.end());
  EXPECT_NEAR(values[kDraws / 2], 3.0, 0.02);
  // 90th percentile of N(3, 0.8) = 3 + 1.2816 * 0.8 ~= 4.025.
  EXPECT_NEAR(values[kDraws * 9 / 10], 4.025, 0.03);
}

TEST(FleetSampler, WeightedChoiceProportionsMatchTheWeights) {
  const scenario::Scenario parsed =
      scenario::parse(scenario_with(FleetLines{}), "test.scn");
  const scenario::WeightedChoice& tiers = parsed.fleet->tiers;  // 2:1
  util::Rng rng(7);
  constexpr int kDraws = 90'000;
  int core2duo = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (fleet::pick(tiers, rng) == "core2duo") ++core2duo;
  }
  EXPECT_NEAR(static_cast<double>(core2duo) / kDraws, 2.0 / 3.0, 0.01);
}

// --- round trip --------------------------------------------------------------

TEST(FleetParse, FleetSmallCanonicalTextRoundTrips) {
  const scenario::Scenario builtin = scenario::load("fleet-small");
  ASSERT_TRUE(builtin.fleet.has_value());
  const std::string canonical = builtin.canonical_text();
  EXPECT_NE(canonical.find("[fleet]"), std::string::npos);
  const scenario::Scenario reparsed =
      scenario::parse(canonical, "canonical");
  EXPECT_EQ(reparsed.canonical_text(), canonical);
  EXPECT_EQ(reparsed.content_hash(), builtin.content_hash());
}

// --- run_fleet: jobs-independence and the selfcheck --------------------------

scenario::Scenario small_scenario() {
  return scenario::parse(scenario_with(FleetLines{}), "test.scn");
}

TEST(FleetRun, SummaryAndSnapshotAreJobsIndependent) {
  const scenario::Scenario scenario = scenario::load("fleet-small");
  fleet::FleetConfig config;
  config.hosts = 1100;  // 3 shards, last one partial
  config.jobs = 1;
  const fleet::FleetResult serial = fleet::run_fleet(scenario, config);
  config.jobs = 4;
  const fleet::FleetResult parallel = fleet::run_fleet(scenario, config);

  EXPECT_EQ(fleet::format_summary(scenario, serial),
            fleet::format_summary(scenario, parallel));
  EXPECT_EQ(serial.registry->snapshot_json(),
            parallel.registry->snapshot_json());
  ASSERT_NE(serial.event_log, nullptr);
  ASSERT_NE(parallel.event_log, nullptr);
  EXPECT_EQ(serial.event_log->render_journal(),
            parallel.event_log->render_journal());
  ASSERT_EQ(serial.raw.size(), parallel.raw.size());
  for (std::size_t i = 0; i < serial.raw.size(); ++i) {
    EXPECT_EQ(serial.raw[i].cpu_ms, parallel.raw[i].cpu_ms) << i;
    EXPECT_EQ(serial.raw[i].turnaround_ms, parallel.raw[i].turnaround_ms)
        << i;
    EXPECT_EQ(serial.raw[i].slowdown_permille,
              parallel.raw[i].slowdown_permille)
        << i;
  }
}

TEST(FleetRun, HostMetricsArePhysicallySane) {
  const scenario::Scenario scenario = small_scenario();
  const scenario::FleetSpec& spec = *scenario.fleet;
  for (std::uint64_t i = 0; i < 32; ++i) {
    const fleet::HostConfig host = fleet::sample_host(spec, spec.seed, i);
    fleet::HostMetrics metrics = fleet::simulate_host(scenario, host);
    fleet::apply_churn(metrics, host,
                       fleet::sample_death(host, spec.seed, i));
    // A virtualized guest can never beat the analytic native time, and
    // partial availability / discarded progress can only stretch the
    // turnaround beyond the useful-plus-wasted compute time.
    EXPECT_GE(metrics.slowdown_permille, 1000) << i;
    EXPECT_GE(metrics.turnaround_ms, metrics.cpu_ms + metrics.wasted_ms)
        << i;
    EXPECT_GT(metrics.cpu_ms, 0) << i;
    EXPECT_GE(metrics.wasted_ms, 0) << i;
    EXPECT_TRUE(metrics.deaths == 0 || metrics.deaths == 1) << i;
    if (metrics.deaths == 0) {
      EXPECT_EQ(metrics.wasted_ms, 0) << i;
    }
  }
}

TEST(FleetRun, ArenaBackedRunMatchesStandaloneSimulation) {
  // Hosts simulated back-to-back through the arena (recycled event-queue
  // storage) must produce exactly what standalone Testbeds produce.
  const scenario::Scenario scenario = scenario::load("fleet-small");
  fleet::FleetConfig config;
  config.hosts = 64;
  const fleet::FleetResult result = fleet::run_fleet(scenario, config);
  const scenario::FleetSpec& spec = *scenario.fleet;
  for (std::uint64_t i = 0; i < config.hosts; ++i) {
    const fleet::HostConfig host = fleet::sample_host(spec, result.seed, i);
    fleet::HostMetrics alone = fleet::simulate_host(scenario, host);
    // run_fleet layers churn on top of the interference simulation:
    // simulate_host + apply_churn(sample_death(...)) is its exact recipe.
    const fleet::DeathDraw draw =
        fleet::sample_death(host, result.seed, i);
    fleet::apply_churn(alone, host, draw);
    EXPECT_EQ(result.raw[i].cpu_ms, alone.cpu_ms) << i;
    EXPECT_EQ(result.raw[i].turnaround_ms, alone.turnaround_ms) << i;
    EXPECT_EQ(result.raw[i].wasted_ms, alone.wasted_ms) << i;
    EXPECT_EQ(result.raw[i].deaths, alone.deaths) << i;
    EXPECT_EQ(result.raw[i].slowdown_permille, alone.slowdown_permille)
        << i;
  }
}

TEST(FleetSelfcheck, CleanRunPasses) {
  const scenario::Scenario scenario = scenario::load("fleet-small");
  fleet::FleetConfig config;
  config.hosts = 1100;
  config.jobs = 2;
  const fleet::FleetResult result = fleet::run_fleet(scenario, config);
  const std::vector<std::string> violations = fleet::selfcheck(result);
  for (const std::string& violation : violations) {
    ADD_FAILURE() << violation;
  }
}

TEST(FleetSelfcheck, CatchesThePercentileOffByOneMutation) {
  const scenario::Scenario scenario = scenario::load("fleet-small");
  fleet::FleetConfig config;
  config.hosts = 1100;
  const fleet::FleetResult result = fleet::run_fleet(scenario, config);
  EXPECT_FALSE(
      fleet::selfcheck(result, fleet::FleetBug::kPercentileOffByOne)
          .empty());
}

TEST(FleetSelfcheck, CatchesTheDroppedShardMutation) {
  const scenario::Scenario scenario = scenario::load("fleet-small");
  fleet::FleetConfig config;
  config.hosts = 1100;
  config.inject_bug = fleet::FleetBug::kDroppedShard;
  const fleet::FleetResult result = fleet::run_fleet(scenario, config);
  EXPECT_FALSE(
      fleet::selfcheck(result, fleet::FleetBug::kDroppedShard).empty());
}

TEST(FleetSelfcheck, ParseFleetBugRejectsUnknownNames) {
  EXPECT_EQ(fleet::parse_fleet_bug("percentile_off_by_one"),
            fleet::FleetBug::kPercentileOffByOne);
  EXPECT_EQ(fleet::parse_fleet_bug("dropped_shard"),
            fleet::FleetBug::kDroppedShard);
  EXPECT_THROW((void)fleet::parse_fleet_bug("offbyone"), util::ConfigError);
}

}  // namespace
}  // namespace vgrid
