// Unit tests for the hardware model: instruction mixes, CPU chip cost
// model, disk and NIC devices, and the machine's contention / service-load
// accounting.

#include <gtest/gtest.h>

#include "hw/cpu_chip.hpp"
#include "hw/disk.hpp"
#include "hw/machine.hpp"
#include "hw/mix.hpp"
#include "hw/nic.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace vgrid::hw {
namespace {

// ---- InstructionMix -----------------------------------------------------------

TEST(InstructionMix, PresetsAreNormalized) {
  for (const InstructionMix& mix :
       {mixes::sevenzip(), mixes::matrix(), mixes::io_bound(),
        mixes::nbench_mem(), mixes::nbench_int(), mixes::nbench_fp(),
        mixes::einstein(), mixes::idle_spin()}) {
    EXPECT_NEAR(mix.total(), 1.0, 1e-9) << mix.describe();
  }
}

TEST(InstructionMix, NormalizeScalesToOne) {
  const InstructionMix raw{2.0, 1.0, 1.0, 0.0};
  const InstructionMix n = raw.normalized();
  EXPECT_NEAR(n.total(), 1.0, 1e-12);
  EXPECT_NEAR(n.user_int, 0.5, 1e-12);
}

TEST(InstructionMix, NormalizeZeroMixThrows) {
  const InstructionMix zero{0, 0, 0, 0};
  EXPECT_THROW(zero.normalized(), util::ConfigError);
}

TEST(InstructionMix, SensitivityOrdering) {
  // MEM-index kernels must be more cache-sensitive than FP ones — that
  // ordering produces the paper's Figure 5 vs FP-plot contrast.
  EXPECT_GT(mixes::nbench_mem().memory_sensitivity(),
            mixes::nbench_int().memory_sensitivity());
  EXPECT_GT(mixes::nbench_int().memory_sensitivity(),
            mixes::nbench_fp().memory_sensitivity());
}

TEST(InstructionMix, EinsteinExertsLowPressure) {
  // The pegged guest must disturb the host lightly (paper: < 5%).
  EXPECT_LT(mixes::einstein().cache_pressure(), 0.10);
}

// ---- CpuChip --------------------------------------------------------------------

TEST(CpuChip, NativeIpsScalesWithFrequency) {
  CpuChipConfig slow;
  slow.frequency_hz = 1e9;
  CpuChipConfig fast = slow;
  fast.frequency_hz = 2e9;
  const InstructionMix mix = mixes::sevenzip();
  EXPECT_NEAR(CpuChip(fast).native_ips(mix) / CpuChip(slow).native_ips(mix),
              2.0, 1e-9);
}

TEST(CpuChip, MultipliersSlowDownProportionally) {
  const CpuChip chip;
  const InstructionMix pure_kernel{0, 0, 0, 1.0};
  ClassMultipliers mult;
  mult.kernel = 8.0;
  EXPECT_NEAR(chip.seconds_per_instruction(pure_kernel, mult) /
                  chip.seconds_per_instruction(pure_kernel,
                                               ClassMultipliers::native()),
              8.0, 1e-9);
}

TEST(CpuChip, InterferenceFactorBounds) {
  const CpuChip chip;
  EXPECT_DOUBLE_EQ(chip.interference_factor(0.5, 0.0), 1.0);
  EXPECT_LT(chip.interference_factor(0.5, 0.4), 1.0);
  // Cap: never lose more than the configured fraction.
  EXPECT_GE(chip.interference_factor(1.0, 10.0),
            1.0 - chip.config().interference_cap);
}

TEST(CpuChip, RejectsBadConfig) {
  CpuChipConfig bad;
  bad.cores = 0;
  EXPECT_THROW(CpuChip{bad}, util::ConfigError);
}

// ---- Disk ------------------------------------------------------------------------

TEST(Disk, ServiceTimeGrowsWithBytes) {
  sim::Simulator simulator;
  Disk disk(simulator);
  const DiskRequest small{DiskOp::kRead, 64 * 1024, true, {}};
  const DiskRequest large{DiskOp::kRead, 1024 * 1024, true, {}};
  EXPECT_LT(disk.service_time(small), disk.service_time(large));
}

TEST(Disk, RandomAccessPaysSeek) {
  sim::Simulator simulator;
  Disk disk(simulator);
  const DiskRequest sequential{DiskOp::kRead, 4096, true, {}};
  const DiskRequest random{DiskOp::kRead, 4096, false, {}};
  EXPECT_GT(disk.service_time(random), disk.service_time(sequential));
}

TEST(Disk, CompletesRequestsInFifoOrder) {
  sim::Simulator simulator;
  Disk disk(simulator);
  std::vector<int> order;
  disk.submit({DiskOp::kWrite, 1024 * 1024, true, [&] { order.push_back(1); }});
  disk.submit({DiskOp::kRead, 1024, true, [&] { order.push_back(2); }});
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(disk.completed_ops(), 2u);
  EXPECT_EQ(disk.bytes_written(), 1024u * 1024u);
  EXPECT_EQ(disk.bytes_read(), 1024u);
}

TEST(Disk, QueueDepthWhileBusy) {
  sim::Simulator simulator;
  Disk disk(simulator);
  disk.submit({DiskOp::kRead, 1024, true, {}});
  disk.submit({DiskOp::kRead, 1024, true, {}});
  EXPECT_TRUE(disk.busy());
  EXPECT_EQ(disk.queue_depth(), 1u);
  simulator.run();
  EXPECT_FALSE(disk.busy());
}

TEST(Disk, ThroughputMatchesConfiguredRate) {
  sim::Simulator simulator;
  DiskConfig config;
  config.sustained_read_bps = 50e6;
  Disk disk(simulator, config);
  const std::uint64_t bytes = 100 * util::MiB;
  sim::SimTime done = 0;
  disk.submit({DiskOp::kRead, bytes, true, [&] { done = simulator.now(); }});
  simulator.run();
  const double seconds = sim::to_seconds(done);
  EXPECT_NEAR(seconds, static_cast<double>(bytes) / 50e6, 0.05);
}

// ---- Nic --------------------------------------------------------------------------

TEST(Nic, EffectiveRateBelowLinkRate) {
  sim::Simulator simulator;
  Nic nic(simulator);
  EXPECT_LT(nic.effective_bps(), nic.config().link_bps);
  EXPECT_GT(nic.effective_bps(), 0.9 * nic.config().link_bps);
}

TEST(Nic, NativeNetBenchLandsNearPaperValue) {
  // Native iperf measured 97.60 Mbps on the 100 Mbps LAN; the wire model
  // must reproduce that within a small margin (the remaining gap is the
  // sender's protocol-stack CPU, added by the workload model).
  sim::Simulator simulator;
  Nic nic(simulator);
  EXPECT_NEAR(util::bytes_per_sec_to_mbps(nic.effective_bps()), 98.8, 1.0);
}

TEST(Nic, TransfersCompleteSequentially) {
  sim::Simulator simulator;
  Nic nic(simulator);
  std::vector<int> order;
  nic.submit({10 * 1000 * 1000, [&] { order.push_back(1); }});
  nic.submit({1000, [&] { order.push_back(2); }});
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(nic.bytes_transferred(), 10u * 1000u * 1000u + 1000u);
}

// ---- Machine ----------------------------------------------------------------------

TEST(Machine, RamCommitAndRelease) {
  sim::Simulator simulator;
  MachineConfig config;
  config.ram_bytes = 1 * util::GiB;
  Machine machine(simulator, config);
  EXPECT_TRUE(machine.commit_ram(300 * util::MiB));
  EXPECT_EQ(machine.ram_committed(), 300 * util::MiB);
  EXPECT_FALSE(machine.commit_ram(900 * util::MiB));  // would exceed
  machine.release_ram(300 * util::MiB);
  EXPECT_EQ(machine.ram_committed(), 0u);
}

TEST(Machine, ServiceLoadGoesToAbsorbingCoresFirst) {
  sim::Simulator simulator;
  Machine machine(simulator);
  // Core 0 runs a host thread; core 1 runs VM work.
  machine.set_occupancy(0, CoreOccupancy{true, 0.3, 0.4, false});
  machine.set_occupancy(1, CoreOccupancy{true, 0.05, 0.1, true});
  machine.set_service_demand(0.6);
  EXPECT_DOUBLE_EQ(machine.interrupt_share(0), 0.0);
  EXPECT_DOUBLE_EQ(machine.interrupt_share(1), 0.6);
}

TEST(Machine, ServiceLoadSpillsWhenSaturated) {
  sim::Simulator simulator;
  Machine machine(simulator);
  machine.set_occupancy(0, CoreOccupancy{true, 0.3, 0.4, false});
  machine.set_occupancy(1, CoreOccupancy{true, 0.3, 0.4, false});
  machine.set_service_demand(0.6);
  EXPECT_DOUBLE_EQ(machine.interrupt_share(0), 0.3);
  EXPECT_DOUBLE_EQ(machine.interrupt_share(1), 0.3);
}

TEST(Machine, UniformDemandHitsAllCores) {
  sim::Simulator simulator;
  Machine machine(simulator);
  machine.set_occupancy(0, CoreOccupancy{true, 0.3, 0.4, false});
  machine.set_uniform_service_demand(0.02);
  EXPECT_NEAR(machine.interrupt_share(0), 0.01, 1e-12);
  EXPECT_NEAR(machine.interrupt_share(1), 0.01, 1e-12);
}

TEST(Machine, VmOwnedThreadsExemptFromTax) {
  sim::Simulator simulator;
  Machine machine(simulator);
  machine.set_occupancy(0, CoreOccupancy{true, 0.05, 0.1, true});
  machine.set_service_demand(0.5);
  const double host_rate = machine.rate_factor(0, 0.0, false);
  const double vm_rate = machine.rate_factor(0, 0.0, true);
  EXPECT_LT(host_rate, 1.0);
  EXPECT_DOUBLE_EQ(vm_rate, 1.0);
}

TEST(Machine, CorunnerPressureSlowsSensitiveThreads) {
  sim::Simulator simulator;
  Machine machine(simulator);
  machine.set_occupancy(1, CoreOccupancy{true, 0.3, 0.4, false});
  const double sensitive = machine.rate_factor(0, 0.66, false);
  const double immune = machine.rate_factor(0, 0.0, false);
  EXPECT_LT(sensitive, immune);
  EXPECT_DOUBLE_EQ(immune, 1.0);
}

TEST(Disk, ZeroByteRequestCompletesWithOverheadOnly) {
  sim::Simulator simulator;
  Disk disk(simulator);
  bool done = false;
  disk.submit({DiskOp::kRead, 0, true, [&] { done = true; }});
  simulator.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(disk.bytes_read(), 0u);
}

TEST(Nic, ServiceTimeMonotonicInBytes) {
  sim::Simulator simulator;
  Nic nic(simulator);
  sim::SimDuration previous = -1;
  for (std::uint64_t bytes = 1000; bytes <= 1'000'000; bytes *= 10) {
    const sim::SimDuration t = nic.service_time(bytes);
    EXPECT_GT(t, previous);
    previous = t;
  }
}

TEST(Machine, OutOfRangeCoreThrows) {
  sim::Simulator simulator;
  Machine machine(simulator);
  EXPECT_THROW((void)machine.occupancy(99), std::out_of_range);
  EXPECT_THROW((void)machine.interrupt_share(-1), std::out_of_range);
}

TEST(Machine, InterruptShareCappedBelowOne) {
  // Even absurd demand leaves every core able to retire instructions
  // (the 0.95 cap keeps scheduled threads live).
  sim::Simulator simulator;
  Machine machine(simulator);
  machine.set_service_demand(2.0);
  for (int core = 0; core < machine.core_count(); ++core) {
    EXPECT_LE(machine.interrupt_share(core), 0.95);
    EXPECT_GT(machine.rate_factor(core, 0.0, false), 0.0);
  }
}

TEST(Machine, NegativeServiceDemandThrows) {
  sim::Simulator simulator;
  Machine machine(simulator);
  EXPECT_THROW(machine.set_service_demand(-0.1), util::ConfigError);
  EXPECT_THROW(machine.set_uniform_service_demand(-0.1), util::ConfigError);
}

}  // namespace
}  // namespace vgrid::hw
