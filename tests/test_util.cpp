// Unit tests for vgrid::util — RNG, strings, units, clocks, logging.

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/cli_args.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace vgrid::util {
namespace {

// ---- SplitMix64 / Xoshiro256 ------------------------------------------------

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Xoshiro256, SeedsProduceDistinctStreams) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, BelowRespectsBound) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Xoshiro256, BelowZeroBoundReturnsZero) {
  Xoshiro256 rng(3);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Xoshiro256, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Xoshiro256, UniformIntCoversInclusiveRange) {
  Xoshiro256 rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Xoshiro256, UniformIntDegenerateRange) {
  Xoshiro256 rng(11);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_EQ(rng.uniform_int(7, 3), 7);  // inverted collapses to lo
}

TEST(Xoshiro256, Uniform01InHalfOpenInterval) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Xoshiro256, Uniform01MeanNearHalf) {
  Xoshiro256 rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, NormalMeanAndSigma) {
  Xoshiro256 rng(19);
  double sum = 0, sum_sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Xoshiro256, ExponentialMeanIsInverseRate) {
  Xoshiro256 rng(23);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Xoshiro256, ChanceExtremes) {
  Xoshiro256 rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Xoshiro256, JumpProducesNonOverlappingStream) {
  Xoshiro256 a(31);
  Xoshiro256 b(31);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

// ---- strings ----------------------------------------------------------------

TEST(Strings, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a||b|", '|');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitNoDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("foo", "foobar"));
  EXPECT_TRUE(starts_with("foo", ""));
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(human_bytes(128 * 1024), "128 KB");
  EXPECT_EQ(human_bytes(32 * 1024 * 1024), "32 MB");
  EXPECT_EQ(human_bytes(500), "500 B");
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(1.2345, 2), "1.23");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

// ---- units ------------------------------------------------------------------

TEST(Units, TimeConversionsRoundTrip) {
  EXPECT_EQ(seconds_to_ns(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(ns_to_seconds(2'000'000'000), 2.0);
}

TEST(Units, MbpsConversions) {
  EXPECT_DOUBLE_EQ(mbps_to_bytes_per_sec(100.0), 12.5e6);
  EXPECT_DOUBLE_EQ(bytes_per_sec_to_mbps(12.5e6), 100.0);
}

TEST(Units, TransferTime) {
  // 1 MB at 1 MB/s = 1 second.
  EXPECT_EQ(transfer_time_ns(1'000'000, 1e6), kSecond);
  EXPECT_EQ(transfer_time_ns(1'000'000, 0.0), 0);
}

// ---- clock ------------------------------------------------------------------

TEST(Clock, WallTimerMeasuresSleep) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = timer.elapsed_seconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 2.0);
}

TEST(Clock, MonotonicTimeAdvances) {
  const std::int64_t a = monotonic_time_ns();
  const std::int64_t b = monotonic_time_ns();
  EXPECT_GE(b, a);
}

TEST(Clock, CpuTimeAdvancesUnderWork) {
  const std::int64_t before = process_cpu_time_ns();
  double acc = 0;
  for (int i = 0; i < 2'000'000; ++i) acc += static_cast<double>(i) * 0.5;
  // Keep the loop alive without deprecated volatile compound assignment.
  EXPECT_GT(acc, 0.0);
  EXPECT_GT(process_cpu_time_ns(), before);
}

// ---- logging ----------------------------------------------------------------

TEST(Logging, ParseLevel) {
  EXPECT_EQ(Logger::parse_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(Logger::parse_level("error"), LogLevel::kError);
  EXPECT_EQ(Logger::parse_level("nonsense"), LogLevel::kWarn);
}

TEST(Logging, LevelGate) {
  const LogLevel saved = Logger::level();
  Logger::set_level(LogLevel::kError);
  EXPECT_EQ(Logger::level(), LogLevel::kError);
  // Macro below must not crash or emit when gated.
  VGRID_DEBUG("test") << "suppressed";
  Logger::set_level(saved);
}

// ---- Args (CLI flag parser) ----------------------------------------------------

namespace {
Args parse(std::initializer_list<const char*> tokens) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("prog"));
  for (const char* token : tokens) {
    argv.push_back(const_cast<char*>(token));
  }
  return Args(static_cast<int>(argv.size()), argv.data());
}
}  // namespace

TEST(Args, PositionalsAndFlagsSeparated) {
  const Args args = parse({"fig1", "--reps", "10", "fig2"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "fig1");
  EXPECT_EQ(args.positional()[1], "fig2");
  EXPECT_EQ(args.get_long("reps", 0), 10);
}

TEST(Args, EqualsSyntax) {
  const Args args = parse({"--env=qemu", "--ratio=2.5"});
  EXPECT_EQ(args.get_or("env", ""), "qemu");
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 2.5);
}

TEST(Args, BooleanFlag) {
  const Args args = parse({"--no-checkpoint", "--verbose"});
  EXPECT_TRUE(args.has("no-checkpoint"));
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("missing"));
}

TEST(Args, BooleanFlagFollowedByFlag) {
  const Args args = parse({"--dry", "--reps", "5"});
  EXPECT_TRUE(args.has("dry"));
  EXPECT_EQ(args.get("dry"), "");
  EXPECT_EQ(args.get_long("reps", 0), 5);
}

TEST(Args, FallbacksOnMissingOrMalformed) {
  const Args args = parse({"--count", "notanumber"});
  EXPECT_EQ(args.get_long("count", 7), 7);
  EXPECT_EQ(args.get_long("absent", 9), 9);
  EXPECT_DOUBLE_EQ(args.get_double("absent", 1.5), 1.5);
  EXPECT_FALSE(args.get("absent").has_value());
}

// ---- errors -----------------------------------------------------------------

TEST(Errors, SystemErrorCarriesErrno) {
  const SystemError error("open failed", 2);
  EXPECT_EQ(error.errno_value(), 2);
  EXPECT_NE(std::string(error.what()).find("errno=2"), std::string::npos);
}

TEST(Errors, HierarchyIsCatchable) {
  EXPECT_THROW(throw ConfigError("x"), VgridError);
  EXPECT_THROW(throw SimulationError("x"), VgridError);
}

}  // namespace
}  // namespace vgrid::util
