// obs::EventLog — the causal workunit-lifecycle journal. The contracts
// under test are the ones the CLI depends on: byte-identical journals
// for any --jobs value (TaskPool sub-log routing + task-order merge),
// flight-recorder retention (anomalies never evicted, ring capacity
// respected, aggregates immune to eviction), the VGRID_EVENTLOG_FORCE_OFF
// kill switch, and trace-id uniqueness when grid::ServerLogic mints
// traces for 10k workunits with deaths in the mix.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/task_pool.hpp"
#include "grid/messages.hpp"
#include "grid/server_logic.hpp"
#include "obs/event_log.hpp"

namespace vgrid::obs::testing {
void run_force_off_lifecycle();
}  // namespace vgrid::obs::testing

namespace vgrid {
namespace {

namespace testing_hooks = vgrid::obs::testing;

/// One synthetic lifecycle; hosts with index % 5 == 0 die once and get
/// reissued, which marks the trace anomalous.
void write_lifecycle(std::uint64_t trace_id, bool anomalous) {
  // [[maybe_unused]]: under -DVGRID_EVENTLOG=OFF the EVT_* sites below
  // compile to nothing and these would trip -Werror=unused-variable.
  [[maybe_unused]] const std::int64_t wait =
      10 + static_cast<std::int64_t>(trace_id % 7);
  [[maybe_unused]] const std::int64_t cpu =
      100 + static_cast<std::int64_t>(trace_id % 31);
  EVT_TRACE_OPEN(trace_id, 0, trace_id % 2 == 0 ? "vmplayer" : "qemu");
  EVT_APPEND(trace_id, obs::EventKind::kCreated, 0, 0, 0);
  EVT_APPEND(trace_id, obs::EventKind::kDispatched, wait, wait, 0);
  EVT_APPEND(trace_id, obs::EventKind::kComputing, wait, 0, 0);
  if (anomalous) {
    EVT_APPEND(trace_id, obs::EventKind::kExpired, wait + 5, 5, 0);
    EVT_APPEND(trace_id, obs::EventKind::kReissued, wait + 5, 0, 0);
  }
  EVT_APPEND(trace_id, obs::EventKind::kSubmitted, wait + cpu, cpu, 0);
  EVT_APPEND(trace_id, obs::EventKind::kValidated, wait + cpu, 0, 0);
  EVT_APPEND(trace_id, obs::EventKind::kCredited, wait + cpu, 0, cpu);
  EVT_TRACE_CLOSE(trace_id);
}

TEST(EventLog, CloseComputesComponentsAndTotal) {
  obs::EventLog log;
  obs::ScopedEventLog scope(&log);
  write_lifecycle(1, /*anomalous=*/false);
  const obs::Trace* trace = log.find_trace(1);
  ASSERT_NE(trace, nullptr);
  EXPECT_FALSE(trace->anomalous);
  using C = obs::Component;
  EXPECT_EQ(trace->components[static_cast<int>(C::kQueueWait)], 11);
  EXPECT_EQ(trace->components[static_cast<int>(C::kCompute)], 101);
  EXPECT_EQ(trace->components[static_cast<int>(C::kValidation)], 0);
  EXPECT_EQ(trace->components[static_cast<int>(C::kRetry)], 0);
  EXPECT_EQ(trace->total(), 112);
  EXPECT_EQ(log.traces_closed(), 1u);
  EXPECT_EQ(log.traces_anomalous(), 0u);
}

TEST(EventLog, ReissueMarksTraceAnomalous) {
  obs::EventLog log;
  obs::ScopedEventLog scope(&log);
  write_lifecycle(5, /*anomalous=*/true);
  const obs::Trace* trace = log.find_trace(5);
  ASSERT_NE(trace, nullptr);
  EXPECT_TRUE(trace->anomalous);
  EXPECT_EQ(log.traces_anomalous(), 1u);
  EXPECT_EQ(
      trace->components[static_cast<int>(obs::Component::kRetry)], 5);
}

TEST(EventLog, JournalIsByteIdenticalAcrossJobCounts) {
  // TaskPool routes a fresh sub-log to every task and merges them in
  // task order: the rendered journal must not depend on worker count or
  // completion order.
  const auto run = [](int jobs) {
    obs::EventLog log;
    obs::ScopedEventLog scope(&log);
    core::TaskPool pool(jobs);
    pool.run(64, [](std::size_t task) {
      const std::uint64_t id = static_cast<std::uint64_t>(task) + 1;
      write_lifecycle(id, id % 5 == 0);
    });
    return log.render_journal();
  };
  const std::string serial = run(1);
  const std::string parallel = run(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(EventLog, RingRespectsCapacityAndNeverEvictsAnomalies) {
  obs::EventLog::Config config;
  config.ring_capacity = 8;
  config.tail_keep = 2;
  obs::EventLog log(config);
  obs::ScopedEventLog scope(&log);
  constexpr std::uint64_t kTraces = 200;
  for (std::uint64_t id = 1; id <= kTraces; ++id) {
    write_lifecycle(id, id % 5 == 0);
  }
  EXPECT_EQ(log.traces_closed(), kTraces);
  const std::uint64_t anomalous = log.traces_anomalous();
  EXPECT_EQ(anomalous, kTraces / 5);
  // Every anomalous lifecycle is retained in full; normals are bounded
  // by ring capacity plus the pinned slowest tail.
  std::uint64_t retained_anomalous = 0;
  std::uint64_t retained_normal = 0;
  for (const obs::Trace* trace : log.traces()) {
    (trace->anomalous ? retained_anomalous : retained_normal) += 1;
  }
  EXPECT_EQ(retained_anomalous, anomalous);
  EXPECT_LE(retained_normal, config.ring_capacity + config.tail_keep);
  EXPECT_EQ(log.ring_churn(),
            (kTraces - anomalous) - retained_normal);
  // The aggregate histograms are fed at close time, so eviction never
  // touches them: the turnaround count covers every lifecycle.
  const obs::Histogram* turnaround =
      log.stats().find_histogram("trace.turnaround");
  ASSERT_NE(turnaround, nullptr);
  EXPECT_EQ(turnaround->count(), kTraces);
}

TEST(EventLog, RingPinsTheSlowestNormalTraces) {
  obs::EventLog::Config config;
  config.ring_capacity = 4;
  config.tail_keep = 3;
  obs::EventLog log(config);
  obs::ScopedEventLog scope(&log);
  // Trace 1 is by far the slowest normal lifecycle; 100 fast normals
  // follow and would evict it from a plain last-N ring.
  EVT_TRACE_OPEN(1, 0, "slow");
  EVT_APPEND(1, obs::EventKind::kDispatched, 0, 90000, 0);
  EVT_APPEND(1, obs::EventKind::kSubmitted, 0, 90000, 0);
  EVT_TRACE_CLOSE(1);
  for (std::uint64_t id = 2; id <= 101; ++id) {
    write_lifecycle(id, /*anomalous=*/false);
  }
  EXPECT_NE(log.find_trace(1), nullptr)
      << "tail_keep must pin the slowest normal against ring churn";
}

TEST(EventLog, ForceOffTranslationUnitRecordsNothing) {
  obs::EventLog log;
  obs::ScopedEventLog scope(&log);
  testing_hooks::run_force_off_lifecycle();
  EXPECT_EQ(log.traces_opened(), 0u);
  EXPECT_EQ(log.traces_closed(), 0u);
  EXPECT_EQ(log.open_count(), 0u);
  EXPECT_EQ(log.retained_count(), 0u);
}

TEST(EventLog, MergePreservesClosedTracesAndAggregates) {
  obs::EventLog parent;
  obs::EventLog sub;
  {
    obs::ScopedEventLog scope(&sub);
    write_lifecycle(7, /*anomalous=*/true);
    write_lifecycle(8, /*anomalous=*/false);
  }
  parent.merge_from(sub);
  EXPECT_EQ(parent.traces_closed(), 2u);
  EXPECT_EQ(parent.traces_anomalous(), 1u);
  ASSERT_NE(parent.find_trace(7), nullptr);
  EXPECT_TRUE(parent.find_trace(7)->anomalous);
  const obs::Histogram* turnaround =
      parent.stats().find_histogram("trace.turnaround");
  ASSERT_NE(turnaround, nullptr);
  EXPECT_EQ(turnaround->count(), 2u);
}

TEST(EventLog, ServerLogicMintsUniqueTraceIdsUnderDeaths) {
  // 10k workunits flow through the grid protocol core with deaths mixed
  // in: every workunit gets exactly one trace (duplicate_opens stays 0)
  // and reissue never mints a second id for the same workunit.
  obs::EventLog log;
  obs::ScopedEventLog scope(&log);
  grid::ServerLogic logic;
  constexpr int kWorkunits = 10000;
  std::vector<grid::WorkunitId> ids;
  ids.reserve(kWorkunits);
  for (int w = 0; w < kWorkunits; ++w) {
    grid::Workunit wu;
    wu.kind = std::string{"einstein"};
    wu.payload = std::string{"wu"};
    wu.replication = 1;
    wu.quorum = 1;
    wu.deadline_seconds = 0.0;  // deaths are explicit expire calls below
    ids.push_back(logic.add_workunit(wu));
  }
  std::set<grid::WorkunitId> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), ids.size());
  // Dispatch everything once, kill every 7th instance, re-dispatch.
  std::int64_t now = 0;
  for (int w = 0; w < kWorkunits; ++w) {
    now += 1000;
    // Spread fetches over many clients: one client draining 10k
    // workunits hits the one-result-per-user scan quadratically.
    (void)logic.next_work(
        grid::WorkRequest{"c" + std::to_string(w % 128)}, now);
  }
  for (int w = 0; w < kWorkunits; w += 7) {
    (void)logic.expire_instance(ids[static_cast<std::size_t>(w)]);
  }
  for (int w = 0; w < kWorkunits; w += 7) {
    now += 1000;
    (void)logic.next_work(
        grid::WorkRequest{"d" + std::to_string(w % 128)}, now);
  }
  EXPECT_EQ(log.traces_opened(), static_cast<std::uint64_t>(kWorkunits));
  EXPECT_EQ(log.duplicate_opens(), 0u);
  EXPECT_EQ(log.dropped_appends(), 0u);
}

}  // namespace
}  // namespace vgrid
