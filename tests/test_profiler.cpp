// Tests for the self-profiling layer: obs::Profiler tree accounting,
// deterministic cross-thread merge via core::TaskPool, the configure-time
// off switch, the report/profile_export renderers, and the bench_diff
// perf-gate semantics on in-memory BENCH documents.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "bench_diff/bench_diff.hpp"
#include "core/task_pool.hpp"
#include "obs/profiler.hpp"
#include "report/profile_export.hpp"

// Defined in test_profiler_forceoff.cpp, which is compiled with
// VGRID_PROFILE_FORCE_OFF: its PROF_SCOPE must expand to nothing even
// while a profiler is installed.
namespace vgrid::obs::testing {
void run_force_off_scope();
}

namespace vgrid::obs {
namespace {

// ---- tree accounting ---------------------------------------------------------

TEST(Profiler, NestedScopesAccumulateInclusiveAndExclusiveTime) {
  Profiler profiler;
  const std::int32_t outer = profiler.enter("outer");
  const std::int32_t inner_a = profiler.enter("inner");
  profiler.leave(inner_a, 30);
  const std::int32_t inner_b = profiler.enter("inner");
  profiler.leave(inner_b, 20);
  profiler.leave(outer, 100);

  // The two "inner" scopes under the same parent share one node.
  EXPECT_EQ(inner_a, inner_b);
  ASSERT_EQ(profiler.nodes().size(), 3u);  // root + outer + inner
  const Profiler::Node& outer_node = profiler.nodes()[outer];
  const Profiler::Node& inner_node = profiler.nodes()[inner_a];
  EXPECT_EQ(outer_node.count, 1u);
  EXPECT_EQ(outer_node.inclusive_ns, 100);
  EXPECT_EQ(inner_node.count, 2u);
  EXPECT_EQ(inner_node.inclusive_ns, 50);
  // Exclusive = inclusive minus the children's inclusive.
  EXPECT_EQ(profiler.exclusive_ns(outer), 50);
  EXPECT_EQ(profiler.exclusive_ns(inner_a), 50);
  EXPECT_EQ(profiler.total_ns(), 100);
  EXPECT_FALSE(profiler.empty());
}

TEST(Profiler, SameNameUnderDifferentParentsIsDistinctNodes) {
  Profiler profiler;
  const std::int32_t a = profiler.enter("a");
  const std::int32_t leaf_under_a = profiler.enter("leaf");
  profiler.leave(leaf_under_a, 1);
  profiler.leave(a, 2);
  const std::int32_t b = profiler.enter("b");
  const std::int32_t leaf_under_b = profiler.enter("leaf");
  profiler.leave(leaf_under_b, 3);
  profiler.leave(b, 4);
  EXPECT_NE(leaf_under_a, leaf_under_b);
  EXPECT_EQ(profiler.nodes()[leaf_under_a].parent, a);
  EXPECT_EQ(profiler.nodes()[leaf_under_b].parent, b);
}

TEST(Profiler, ProfScopeRecordsIntoAmbientProfiler) {
  Profiler profiler;
  {
    ScopedProfiler install(&profiler);
    PROF_SCOPE("ambient.outer");
    PROF_SCOPE("ambient.inner");
  }
  // Both scopes opened in the same block: inner nests under outer
  // (declaration order), both completed on block exit.
  ASSERT_EQ(profiler.nodes().size(), 3u);
  EXPECT_EQ(profiler.nodes()[1].name, "ambient.outer");
  EXPECT_EQ(profiler.nodes()[2].name, "ambient.inner");
  EXPECT_EQ(profiler.nodes()[2].parent, 1);
  EXPECT_EQ(profiler.nodes()[1].count, 1u);
  EXPECT_GE(profiler.nodes()[1].inclusive_ns,
            profiler.nodes()[2].inclusive_ns);
}

TEST(Profiler, ProfScopeWithoutProfilerIsInert) {
  ASSERT_EQ(current_profiler(), nullptr);
  PROF_SCOPE("nobody.listening");  // must not crash or allocate a tree
  EXPECT_EQ(current_profiler(), nullptr);
}

TEST(Profiler, ForceOffTranslationUnitRecordsNothing) {
  Profiler profiler;
  {
    ScopedProfiler install(&profiler);
    testing::run_force_off_scope();
  }
  EXPECT_TRUE(profiler.empty());
}

// ---- merge -------------------------------------------------------------------

TEST(Profiler, MergeMatchesByPathAndAddsCounts) {
  Profiler target;
  const std::int32_t a = target.enter("a");
  const std::int32_t b = target.enter("b");
  target.leave(b, 10);
  target.leave(a, 30);

  Profiler source;
  const std::int32_t a2 = source.enter("a");
  const std::int32_t b2 = source.enter("b");
  source.leave(b2, 5);
  source.leave(a2, 15);
  const std::int32_t c = source.enter("c");
  source.leave(c, 7);

  target.merge_from(source);
  ASSERT_EQ(target.nodes().size(), 4u);  // root, a, b, c
  EXPECT_EQ(target.nodes()[a].count, 2u);
  EXPECT_EQ(target.nodes()[a].inclusive_ns, 45);
  EXPECT_EQ(target.nodes()[b].count, 2u);
  EXPECT_EQ(target.nodes()[b].inclusive_ns, 15);
  EXPECT_EQ(target.nodes()[3].name, "c");
  EXPECT_EQ(target.nodes()[3].parent, 0);
  EXPECT_EQ(target.total_ns(), 45 + 7);
}

TEST(Profiler, MergedTreeOutlivesSourceProfiler) {
  // merge_from must not keep pointers into the (dying) source: the
  // fast-path name pointers have to be repointed at the target's own
  // strings.
  Profiler target;
  {
    Profiler source;
    const std::int32_t node = source.enter(std::string("heap.name").c_str());
    source.leave(node, 3);
    target.merge_from(source);
  }
  const std::int32_t again = target.enter("heap.name");
  target.leave(again, 4);
  ASSERT_EQ(target.nodes().size(), 2u);
  EXPECT_EQ(target.nodes()[1].count, 2u);
  EXPECT_EQ(target.nodes()[1].inclusive_ns, 7);
}

/// The tentpole contract: scopes recorded inside TaskPool tasks merge in
/// task order, so the profile STRUCTURE (paths, counts) is identical for
/// any --jobs value; only the wall-clock ns differ.
std::vector<std::pair<std::string, std::uint64_t>> pooled_structure(
    int jobs) {
  Profiler profiler;
  ScopedProfiler install(&profiler);
  core::TaskPool pool(jobs);
  pool.run(24, [](std::size_t i) {
    PROF_SCOPE("pool.task");
    if (i % 3 == 0) {
      PROF_SCOPE("pool.third");
    }
  });
  std::vector<std::pair<std::string, std::uint64_t>> structure;
  for (const Profiler::Node& node : profiler.nodes()) {
    structure.emplace_back(node.name, node.count);
  }
  return structure;
}

TEST(Profiler, TaskPoolMergeStructureIsIdenticalAcrossJobCounts) {
  const auto serial = pooled_structure(1);
  const auto parallel = pooled_structure(8);
  EXPECT_EQ(serial, parallel);
  ASSERT_EQ(serial.size(), 3u);  // root + pool.task + pool.third
  EXPECT_EQ(serial[1], (std::pair<std::string, std::uint64_t>(
                           "pool.task", 24u)));
  EXPECT_EQ(serial[2], (std::pair<std::string, std::uint64_t>(
                           "pool.third", 8u)));
}

// ---- exporters ---------------------------------------------------------------

Profiler& sample_profile(Profiler& profiler) {
  const std::int32_t run = profiler.enter("run");
  const std::int32_t parse = profiler.enter("parse");
  profiler.leave(parse, 40);
  const std::int32_t exec = profiler.enter("exec");
  profiler.leave(exec, 50);
  profiler.leave(run, 100);
  return profiler;
}

TEST(ProfileExport, JsonIsVersionedAndSortsChildrenByName) {
  Profiler profiler;
  const std::string json = report::profile_json(sample_profile(profiler));
  EXPECT_NE(json.find("\"vgrid_profile_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"total_ns\":100"), std::string::npos);
  // Children of "run" sort by name: exec before parse despite creation
  // order.
  EXPECT_LT(json.find("\"name\":\"exec\""), json.find("\"name\":\"parse\""));
  EXPECT_NE(json.find("\"excl_ns\":10"), std::string::npos);
}

TEST(ProfileExport, FoldedStacksRoundTripPathsAndExclusiveTime) {
  Profiler profiler;
  const std::string folded =
      report::profile_folded(sample_profile(profiler));
  // Parse the folded lines back: "path ns" per line, nonzero-only.
  std::istringstream in(folded);
  std::string line;
  std::int64_t total = 0;
  std::vector<std::string> paths;
  while (std::getline(in, line)) {
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    paths.push_back(line.substr(0, space));
    total += std::stoll(line.substr(space + 1));
  }
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0], "run");
  EXPECT_EQ(paths[1], "run;exec");
  EXPECT_EQ(paths[2], "run;parse");
  // Folded exclusive times partition the total inclusive time.
  EXPECT_EQ(total, 100);
}

TEST(ProfileExport, TopExclusiveAggregatesByScopeName) {
  Profiler profiler;
  const std::int32_t a = profiler.enter("a");
  const std::int32_t leaf1 = profiler.enter("leaf");
  profiler.leave(leaf1, 30);
  profiler.leave(a, 30);
  const std::int32_t b = profiler.enter("b");
  const std::int32_t leaf2 = profiler.enter("leaf");
  profiler.leave(leaf2, 25);
  profiler.leave(b, 40);

  const auto rows = report::top_exclusive(profiler, 2);
  ASSERT_EQ(rows.size(), 2u);
  // "leaf" appears under both parents but reports one aggregated row.
  EXPECT_EQ(rows[0].name, "leaf");
  EXPECT_EQ(rows[0].count, 2u);
  EXPECT_EQ(rows[0].exclusive_ns, 55);
  EXPECT_EQ(rows[1].name, "b");
  EXPECT_EQ(rows[1].exclusive_ns, 15);
}

// ---- bench_diff gate ---------------------------------------------------------

std::string bench_doc(std::int64_t round_trip_ns, bool with_extra) {
  std::ostringstream out;
  out << "{\"vgrid_bench_version\":1,\n\"benchmarks\":[\n"
      << "{\"median_ns\":" << round_trip_ns
      << ",\"min_ns\":" << round_trip_ns - 100
      << ",\"name\":\"grid.messages.round_trip\",\"ops\":1000,"
      << "\"ops_per_sec\":1e6,\"reps\":3}";
  if (with_extra) {
    out << ",\n{\"median_ns\":500000,\"min_ns\":400000,"
        << "\"name\":\"sim.event_queue.push_pop\",\"ops\":100,"
        << "\"ops_per_sec\":2e5,\"reps\":3}";
  }
  out << "\n],\n\"host\":{\"compiler\":\"gcc 12\",\"cores\":4},\n"
      << "\"quick\":true,\n"
      << "\"scenario\":{\"hash\":\"abc\",\"name\":\"paper\"}}\n";
  return out.str();
}

TEST(BenchDiff, HostQuickFlagParsesFromHostWithTopLevelFallback) {
  // Since the eventlog PR `quick` lives inside the host fingerprint
  // (written out explicitly even when false); older committed trajectory
  // entries still carry it at top level and must keep parsing.
  const std::string modern =
      "{\"vgrid_bench_version\":1,\"benchmarks\":["
      "{\"median_ns\":1000,\"min_ns\":900,\"name\":\"x\",\"ops\":1,"
      "\"ops_per_sec\":1,\"reps\":3}],"
      "\"host\":{\"compiler\":\"gcc 12\",\"cores\":4,\"quick\":false},"
      "\"scenario\":{\"hash\":\"abc\",\"name\":\"paper\"}}";
  EXPECT_FALSE(tools::parse_bench(modern).quick);
  EXPECT_TRUE(tools::parse_bench(bench_doc(1000, false)).quick)
      << "legacy top-level quick flag must keep parsing";
}

TEST(BenchDiff, QuickBaselineIsANoteEvenWhenModesMatch) {
  // A committed trajectory entry recorded in --quick mode is not a
  // trustworthy baseline even if the candidate is quick too: the report
  // must say so (as a note, not a failure) so the baseline gets
  // regenerated with a full run.
  const auto baseline = tools::parse_bench(bench_doc(1'000'000, true));
  const auto candidate = tools::parse_bench(bench_doc(1'000'000, true));
  const auto report = tools::diff_bench(baseline, candidate, {});
  EXPECT_FALSE(report.gate_failed);
  bool noted = false;
  for (const auto& finding : report.findings) {
    if (!finding.regression && finding.name == "(document)" &&
        finding.detail.find("--quick mode") != std::string::npos) {
      noted = true;
    }
  }
  EXPECT_TRUE(noted);
}

TEST(BenchDiff, CoresMismatchIsANoteNotARegression) {
  // Comparing runs from hosts with different core counts is
  // apples-to-oranges: the gate must surface it as a visible note
  // without failing (perf data from another machine is advisory).
  const auto baseline = tools::parse_bench(bench_doc(1'000'000, true));
  auto candidate = tools::parse_bench(bench_doc(1'000'000, true));
  candidate.cores = 128;
  const auto report = tools::diff_bench(baseline, candidate, {});
  EXPECT_FALSE(report.gate_failed);
  bool noted = false;
  for (const auto& finding : report.findings) {
    if (!finding.regression &&
        finding.detail.find("host fingerprint differs") !=
            std::string::npos &&
        finding.detail.find("128") != std::string::npos) {
      noted = true;
    }
  }
  EXPECT_TRUE(noted);
}

TEST(BenchDiff, WithinBandPasses) {
  const auto baseline = tools::parse_bench(bench_doc(1'000'000, true));
  const auto candidate = tools::parse_bench(bench_doc(1'100'000, true));
  tools::BenchDiffOptions options;
  options.rel_tol = 0.25;
  const auto report = tools::diff_bench(baseline, candidate, options);
  EXPECT_FALSE(report.gate_failed);
}

TEST(BenchDiff, RegressionBeyondBandFailsGate) {
  const auto baseline = tools::parse_bench(bench_doc(1'000'000, true));
  const auto candidate = tools::parse_bench(bench_doc(2'000'000, true));
  tools::BenchDiffOptions options;
  options.rel_tol = 0.25;
  options.abs_ns = 0;
  const auto report = tools::diff_bench(baseline, candidate, options);
  EXPECT_TRUE(report.gate_failed);
  bool flagged = false;
  for (const auto& finding : report.findings) {
    if (finding.regression &&
        finding.name == "grid.messages.round_trip") {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
}

// The fleet macro-bench rides the same gate: a population-throughput
// regression (hosts/s halved) must fail, and dropping the benchmark from
// the candidate document entirely must fail too — a silent removal is
// how a perf regression would classically dodge the gate.
std::string fleet_bench_doc(std::int64_t fleet_ns, bool with_fleet) {
  std::ostringstream out;
  out << "{\"vgrid_bench_version\":1,\n\"benchmarks\":[\n"
      << "{\"median_ns\":1000000,\"min_ns\":900000,"
      << "\"name\":\"core.fig5.end_to_end\",\"ops\":16,"
      << "\"ops_per_sec\":16000,\"reps\":3}";
  if (with_fleet) {
    out << ",\n{\"median_ns\":" << fleet_ns
        << ",\"min_ns\":" << fleet_ns - 1000
        << ",\"name\":\"fleet.hosts_per_sec\",\"ops\":1000,"
        << "\"ops_per_sec\":" << 1000.0 / (fleet_ns / 1e9)
        << ",\"reps\":3}";
  }
  out << "\n],\n\"host\":{\"compiler\":\"gcc 12\",\"cores\":4},\n"
      << "\"quick\":true,\n"
      << "\"scenario\":{\"hash\":\"abc\",\"name\":\"fleet-small\"}}\n";
  return out.str();
}

TEST(BenchDiff, FleetThroughputRegressionFailsGate) {
  const auto baseline = tools::parse_bench(fleet_bench_doc(25'000'000, true));
  const auto candidate =
      tools::parse_bench(fleet_bench_doc(50'000'000, true));
  tools::BenchDiffOptions options;
  options.rel_tol = 0.35;
  const auto report = tools::diff_bench(baseline, candidate, options);
  EXPECT_TRUE(report.gate_failed);
  bool flagged = false;
  for (const auto& finding : report.findings) {
    if (finding.regression && finding.name == "fleet.hosts_per_sec") {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
}

TEST(BenchDiff, DroppedFleetBenchmarkFailsGate) {
  const auto baseline = tools::parse_bench(fleet_bench_doc(25'000'000, true));
  const auto candidate =
      tools::parse_bench(fleet_bench_doc(25'000'000, false));
  const auto report = tools::diff_bench(baseline, candidate, {});
  EXPECT_TRUE(report.gate_failed);
}

TEST(BenchDiff, MissingBenchmarkIsARegressionNewOneIsANote) {
  const auto baseline = tools::parse_bench(bench_doc(1'000'000, true));
  const auto candidate = tools::parse_bench(bench_doc(1'000'000, false));
  const auto shrunk = tools::diff_bench(baseline, candidate, {});
  EXPECT_TRUE(shrunk.gate_failed);

  const auto grown = tools::diff_bench(candidate, baseline, {});
  EXPECT_FALSE(grown.gate_failed);
  bool noted = false;
  for (const auto& finding : grown.findings) {
    if (!finding.regression &&
        finding.name == "sim.event_queue.push_pop") {
      noted = true;
    }
  }
  EXPECT_TRUE(noted);
}

TEST(BenchDiff, AbsNsFloorShieldsMicrosecondBenchesFromJitter) {
  // 10us -> 40us is 4x, but under a 50us absolute floor it is noise.
  const auto baseline = tools::parse_bench(bench_doc(10'000, false));
  const auto candidate = tools::parse_bench(bench_doc(40'000, false));
  tools::BenchDiffOptions options;  // default abs_ns = 50'000
  options.rel_tol = 0.0;
  const auto report = tools::diff_bench(baseline, candidate, options);
  EXPECT_FALSE(report.gate_failed);
}

TEST(BenchDiff, ImprovementsBlockCountsWinsAndTracksTheBest) {
  // Candidate is ~3.33x faster on round_trip and 2x on push_pop (both
  // beyond the band): the report must count both and name round_trip as
  // the best speedup. Note detail still nudges toward a baseline refresh.
  auto baseline = tools::parse_bench(bench_doc(1'000'000, true));
  auto candidate = tools::parse_bench(bench_doc(300'000, true));
  candidate.benchmarks[1].median_ns = 250'000;  // push_pop: 500us -> 250us
  tools::BenchDiffOptions options;
  options.rel_tol = 0.25;
  options.abs_ns = 0;
  const auto report = tools::diff_bench(baseline, candidate, options);
  EXPECT_FALSE(report.gate_failed);
  EXPECT_EQ(report.improvements.count, 2);
  EXPECT_EQ(report.improvements.best_name, "grid.messages.round_trip");
  EXPECT_NEAR(report.improvements.best_speedup, 1'000'000.0 / 300'000.0,
              1e-9);
  bool noted = false;
  for (const auto& finding : report.findings) {
    if (!finding.regression &&
        finding.name == "grid.messages.round_trip" &&
        finding.detail.find("improved") != std::string::npos) {
      noted = true;
    }
  }
  EXPECT_TRUE(noted);
}

TEST(BenchDiff, ImprovementsWithinBandDoNotCount) {
  // 10% faster sits inside the default 25% band: no improvement entry —
  // the block reports wins beyond noise, not jitter.
  const auto baseline = tools::parse_bench(bench_doc(1'000'000, true));
  const auto candidate = tools::parse_bench(bench_doc(900'000, true));
  tools::BenchDiffOptions options;
  options.abs_ns = 0;
  const auto report = tools::diff_bench(baseline, candidate, options);
  EXPECT_EQ(report.improvements.count, 0);
  EXPECT_TRUE(report.improvements.best_name.empty());
}

TEST(BenchDiff, RequiredBenchMissingFromCandidateFailsGate) {
  // --require pins newly added coverage: even when the baseline predates
  // the benchmark (so the coverage-shrank rule cannot fire), a candidate
  // without it must fail the gate.
  const auto baseline = tools::parse_bench(bench_doc(1'000'000, false));
  const auto candidate = tools::parse_bench(bench_doc(1'000'000, false));
  tools::BenchDiffOptions options;
  options.require.push_back("hw.machine.redistribute");
  const auto report = tools::diff_bench(baseline, candidate, options);
  EXPECT_TRUE(report.gate_failed);
  bool flagged = false;
  for (const auto& finding : report.findings) {
    if (finding.regression && finding.name == "hw.machine.redistribute" &&
        finding.detail.find("required") != std::string::npos) {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
}

TEST(BenchDiff, RequiredBenchPresentPassesEvenWhenNewToBaseline) {
  // The required bench exists only in the candidate: satisfied requirement
  // plus the usual "new benchmark" note, no failure.
  const auto baseline = tools::parse_bench(bench_doc(1'000'000, false));
  const auto candidate = tools::parse_bench(bench_doc(1'000'000, true));
  tools::BenchDiffOptions options;
  options.require.push_back("sim.event_queue.push_pop");
  const auto report = tools::diff_bench(baseline, candidate, options);
  EXPECT_FALSE(report.gate_failed);
}

TEST(BenchDiff, ParserRejectsWrongVersionAndMalformedEntries) {
  EXPECT_THROW(
      tools::parse_bench("{\"vgrid_bench_version\":2,\"benchmarks\":[],"
                         "\"host\":{\"compiler\":\"g\",\"cores\":1},"
                         "\"quick\":true,"
                         "\"scenario\":{\"hash\":\"h\",\"name\":\"n\"}}"),
      std::runtime_error);
  EXPECT_THROW(tools::parse_bench("not json"), std::runtime_error);
}

}  // namespace
}  // namespace vgrid::obs
