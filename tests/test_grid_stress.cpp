// ProjectServer soak test: 64 concurrent clients hammering one server
// over real TCP, workunits fed by a generator, with a block of "dying"
// clients that fetch instances and vanish without submitting (the
// volunteer-churn failure mode of the paper's desktop-grid setting). The
// deadline transitioner must reissue every abandoned instance, every
// workunit must still reach quorum validation, and the credit ledger must
// balance exactly — no lost and no duplicated credit. Run under
// ASan/UBSan and TSan in CI (thread-safety of the server is the point).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "grid/client.hpp"
#include "grid/messages.hpp"
#include "grid/server.hpp"
#include "grid/tcp_util.hpp"
#include "grid/workunit.hpp"
#include "obs/registry.hpp"
#include "util/clock.hpp"
#include "util/strings.hpp"

namespace vgrid {
namespace {

using grid::GridClient;
using grid::ProjectServer;
using grid::Result;
using grid::ScrapeResponse;
using grid::ServerStats;
using grid::StatsResponse;
using grid::Workunit;
using grid::WorkunitState;

/// Protocol-level client: unlike GridClient it can fetch an instance and
/// *not* submit (a dying volunteer), and it pins the claimed CPU time, so
/// the credit ledger is exactly predictable.
class RawClient {
 public:
  RawClient(std::uint16_t port, std::string id)
      : port_(port), id_(std::move(id)) {}

  std::optional<Workunit> fetch() {
    const auto reply =
        round_trip(grid::serialize(grid::WorkRequest{id_}),
                   grid::parse_work_response);
    if (!reply || !reply->has_work) return std::nullopt;
    return reply->workunit;
  }

  bool submit(const Workunit& workunit, double cpu_seconds) {
    const Result result{workunit.id, id_, "echo:" + workunit.payload,
                        cpu_seconds};
    const auto reply =
        round_trip(grid::serialize(grid::SubmitRequest{result}),
                   grid::parse_submit_response);
    return reply && reply->accepted;
  }

  const std::string& id() const noexcept { return id_; }

 private:
  template <typename Parser>
  auto round_trip(const std::string& request, Parser parse)
      -> decltype(parse(std::string())) {
    grid::tcp::Fd conn = grid::tcp::connect_loopback(port_);
    if (!grid::tcp::write_line(conn.get(), request)) return std::nullopt;
    std::string line;
    if (!grid::tcp::read_line(conn.get(), line)) return std::nullopt;
    return parse(line);
  }

  std::uint16_t port_;
  std::string id_;
};

constexpr std::uint64_t kWorkunits = 96;
constexpr int kReplication = 2;
constexpr int kQuorum = 2;
constexpr int kWorkers = 48;
constexpr int kDying = 16;  // fetch an instance each, never submit
constexpr double kCpuPerResult = 1.0;
constexpr double kSoakBudgetSeconds = 60.0;

void install_generator(ProjectServer& server,
                       std::atomic<std::uint64_t>& generated,
                       double deadline_seconds) {
  server.set_generator([&generated, deadline_seconds](Workunit& workunit) {
    const std::uint64_t n = generated.fetch_add(1);
    if (n >= kWorkunits) return false;
    workunit.kind = "echo";
    workunit.payload =
        util::format("payload-%llu", static_cast<unsigned long long>(n));
    workunit.replication = kReplication;
    workunit.quorum = kQuorum;
    workunit.deadline_seconds = deadline_seconds;
    return true;
  });
}

TEST(GridStress, SixtyFourClientsWithDeathsValidateEverythingExactlyOnce) {
  // The ambient registry must be installed before the server constructs:
  // ProjectServer resolves its grid.server.rpc_ns histograms (one per
  // message type) at member-init time.
  obs::Registry metrics;
  obs::ScopedRegistry metrics_scope(&metrics);
  ProjectServer server;
  std::atomic<std::uint64_t> generated{0};
  // Short server-side deadline so instances abandoned by the dying
  // clients are reissued within the test's budget.
  install_generator(server, generated, /*deadline_seconds=*/0.2);

  // Phase 1 — the dying clients: each fetches one instance concurrently,
  // then disappears without submitting. Those instances can only come
  // back through the deadline transitioner.
  std::atomic<std::uint64_t> abandoned{0};
  {
    std::vector<std::thread> dying;
    dying.reserve(kDying);
    for (int i = 0; i < kDying; ++i) {
      dying.emplace_back([&server, &abandoned, i] {
        RawClient client(server.port(), util::format("dying-%02d", i));
        if (client.fetch()) abandoned.fetch_add(1);
      });
    }
    for (auto& thread : dying) thread.join();
  }
  ASSERT_EQ(abandoned.load(), static_cast<std::uint64_t>(kDying));

  // Phase 2 — the surviving workers: fetch/execute/submit until every
  // workunit validated (their requests also drive the transitioner).
  std::atomic<bool> done{false};
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int i = 0; i < kWorkers; ++i) {
    workers.emplace_back([&server, &done, i] {
      RawClient client(server.port(), util::format("worker-%02d", i));
      while (!done.load(std::memory_order_relaxed)) {
        const auto workunit = client.fetch();
        if (!workunit) {
          // Queue dry but workunits still in flight: an abandoned
          // instance may not have expired yet — back off and retry.
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          continue;
        }
        client.submit(*workunit, kCpuPerResult);
      }
    });
  }

  // While the workers hammer the server, a watcher polls the live SCRAPE
  // endpoint: every reply must expose the Prometheus exposition and —
  // once RPCs land in the rolling window — ordered, plausible service
  // percentiles. This is the `vgrid watch grid` data path under real
  // 64-client contention.
  GridClient watcher(server.port(), "watcher");
  std::uint64_t scrapes_with_window = 0;
  const util::WallTimer timer;
  while (server.stats().workunits_validated < kWorkunits &&
         timer.elapsed_seconds() < kSoakBudgetSeconds) {
    const ScrapeResponse scrape = watcher.scrape();
    EXPECT_EQ(scrape.window_ms, ProjectServer::kScrapeWindowMs);
    EXPECT_NE(scrape.prometheus_text.find("grid_server_rpc_ns"),
              std::string::npos)
        << "scrape lost the Prometheus exposition";
    if (scrape.rpc_count > 0) {
      ++scrapes_with_window;
      EXPECT_GT(scrape.rpc_p50_ns, 0);
      EXPECT_GE(scrape.rpc_p99_ns, scrape.rpc_p50_ns);
      EXPECT_LT(scrape.rpc_p99_ns, 10'000'000'000LL)
          << "a loopback RPC cannot take 10s";
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  done.store(true);
  for (auto& thread : workers) thread.join();
  if (scrapes_with_window == 0) {
    // Instant convergence: the window still holds the soak's RPCs (it is
    // 10 s deep) — one post-hoc scrape must see them.
    const ScrapeResponse scrape = watcher.scrape();
    EXPECT_GT(scrape.rpc_count, 0u);
    EXPECT_GT(scrape.rpc_p50_ns, 0);
    EXPECT_GE(scrape.rpc_p99_ns, scrape.rpc_p50_ns);
    ++scrapes_with_window;
  }
  EXPECT_GT(scrapes_with_window, 0u)
      << "no scrape observed the rolling RPC window populated";

  const ServerStats stats = server.stats();
  ASSERT_EQ(stats.workunits_validated, kWorkunits)
      << "soak did not converge within " << kSoakBudgetSeconds << "s";
  EXPECT_EQ(stats.workunits_invalid, 0u);

  // Every workunit reached kValidated with the echo executor's canonical
  // output (ids are dense: the generator runs under the server's lock).
  for (std::uint64_t id = 1; id <= kWorkunits; ++id) {
    ASSERT_EQ(server.workunit_state(id), WorkunitState::kValidated)
        << "workunit " << id;
    const auto canonical = server.canonical_result(id);
    ASSERT_TRUE(canonical.has_value());
    EXPECT_EQ(canonical->rfind("echo:payload-", 0), 0u) << *canonical;
  }

  // Every instance abandoned by a dying client had to be reissued for its
  // workunit to validate. (Reissues can exceed the deaths: a slow-but-live
  // instance may also expire; that workunit just collects a spare result.)
  EXPECT_GE(stats.instances_reissued, abandoned.load());

  // Credit ledger balances exactly — BOINC's rule grants credit once, at
  // validation time, to the quorum of matching results, and every result
  // claimed exactly kCpuPerResult seconds:
  //   no lost credit:        total == quorum x validated x claim
  //   no duplicated credit:  (same equality, from above)
  //   per-result accounting: accepted results and CPU all reach accounts.
  double total_credit = 0.0;
  double total_cpu = 0.0;
  std::uint64_t total_accepted = 0;
  for (int i = 0; i < kWorkers; ++i) {
    const StatsResponse account =
        server.client_account(util::format("worker-%02d", i));
    total_credit += account.credit;
    total_cpu += account.cpu_seconds;
    total_accepted += account.results_accepted;
    EXPECT_LE(account.credit, account.cpu_seconds)
        << "worker-" << i << " granted more credit than it claimed";
  }
  for (int i = 0; i < kDying; ++i) {
    const StatsResponse account =
        server.client_account(util::format("dying-%02d", i));
    EXPECT_EQ(account.results_accepted, 0u);
    EXPECT_EQ(account.credit, 0.0);
  }
  EXPECT_EQ(total_accepted, stats.results_received);
  EXPECT_DOUBLE_EQ(total_cpu, stats.total_cpu_seconds);
  EXPECT_DOUBLE_EQ(total_credit,
                   static_cast<double>(kQuorum) *
                       static_cast<double>(kWorkunits) * kCpuPerResult);

  server.stop();

  // The per-message-type RPC wall-clock histograms surfaced in the
  // metrics snapshot must account for every connection the soak made:
  // one `work` observation per work request, one `submit` per received
  // result, and nothing on the malformed path.
  const obs::Histogram& rpc_work = metrics.histogram(
      "grid.server.rpc_ns", obs::rpc_server_ns_buckets(),
      {{"type", "work"}});
  const obs::Histogram& rpc_submit = metrics.histogram(
      "grid.server.rpc_ns", obs::rpc_server_ns_buckets(),
      {{"type", "submit"}});
  const obs::Histogram& rpc_malformed = metrics.histogram(
      "grid.server.rpc_ns", obs::rpc_server_ns_buckets(),
      {{"type", "malformed"}});
  EXPECT_EQ(rpc_work.count(), stats.work_requests);
  EXPECT_EQ(rpc_submit.count(), stats.results_received);
  EXPECT_EQ(rpc_malformed.count(), 0u);
  EXPECT_GT(rpc_work.sum(), 0) << "service time must be wall-clock, not 0";
  EXPECT_NE(metrics.snapshot_json().find("grid.server.rpc_ns"),
            std::string::npos);
}

TEST(GridStress, ConcurrentGridClientsDrainGeneratorCleanly) {
  // The real client API under concurrency: no deaths, no deadlines — just
  // eight GridClients racing run() against one generator-fed server.
  ProjectServer server;
  std::atomic<std::uint64_t> generated{0};
  install_generator(server, generated, /*deadline_seconds=*/0.0);

  constexpr int kClients = 8;
  std::vector<std::unique_ptr<GridClient>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<GridClient>(
        server.port(), util::format("client-%02d", i)));
    clients.back()->register_app("echo", [](const std::string& payload) {
      return "echo:" + payload;
    });
  }
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (auto& client : clients) {
    threads.emplace_back(
        [&client] { client->run(kWorkunits, /*idle_limit=*/5); });
  }
  for (auto& thread : threads) thread.join();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.workunits_validated, kWorkunits);
  EXPECT_EQ(stats.workunits_invalid, 0u);
  EXPECT_EQ(stats.instances_reissued, 0u);
  std::uint64_t completed = 0;
  for (const auto& client : clients) {
    completed += client->stats().workunits_completed;
    EXPECT_EQ(client->stats().rejected_results, 0u);
  }
  EXPECT_EQ(completed, stats.results_received);
  server.stop();
}

}  // namespace
}  // namespace vgrid
