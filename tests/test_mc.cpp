// The mc subsystem's own suite: canonical-state symmetry reduction, the
// determinism of the DFS counters, the seeded-fault fixtures, schedule
// round-trips, and the search bounds. The expensive full explorations here
// are the same configs the `vgrid mc` ctests run — a few thousand states,
// well under a second each.

#include <gtest/gtest.h>

#include "mc/explorer.hpp"
#include "mc/invariants.hpp"
#include "mc/model.hpp"

namespace vgrid::mc {
namespace {

ModelConfig small_config() {
  ModelConfig config;
  config.clients = 2;
  config.workunits = 1;
  config.replication = 2;
  config.quorum = 2;
  config.max_deaths = 0;
  return config;
}

// --- canonical state & symmetry ---------------------------------------------

TEST(McModel, PermutedClientsHashIdentically) {
  // The same protocol history performed by different (but disjoint) clients
  // must canonicalize to the same state: client identity is renamed away.
  ModelConfig config;  // 3 clients, 3 workunits
  GridModel a(config);
  GridModel b(config);
  a.execute({0, ActionKind::kFetch});
  a.execute({0, ActionKind::kCompute});
  b.execute({2, ActionKind::kFetch});
  b.execute({2, ActionKind::kCompute});
  EXPECT_EQ(a.canonical_state(), b.canonical_state());
  EXPECT_EQ(a.state_hash(), b.state_hash());
}

TEST(McModel, PermutedSubmissionOrderHashesIdentically) {
  // Two clients fetch+compute+submit the same workunit in either order:
  // after both submissions the states are client-permutations.
  const ModelConfig config = small_config();
  GridModel a(config);
  GridModel b(config);
  auto run = [](GridModel& model, int first, int second) {
    model.execute({first, ActionKind::kFetch});
    model.execute({second, ActionKind::kFetch});
    model.execute({first, ActionKind::kCompute});
    model.execute({second, ActionKind::kCompute});
    model.execute({first, ActionKind::kSubmit});
    model.execute({second, ActionKind::kSubmit});
  };
  run(a, 0, 1);
  run(b, 1, 0);
  EXPECT_EQ(a.canonical_state(), b.canonical_state());
}

TEST(McModel, DifferentProgressHashesDifferently) {
  ModelConfig config;
  GridModel a(config);
  GridModel b(config);
  a.execute({0, ActionKind::kFetch});
  b.execute({0, ActionKind::kFetch});
  b.execute({0, ActionKind::kCompute});
  EXPECT_NE(a.canonical_state(), b.canonical_state());
  EXPECT_NE(a.state_hash(), b.state_hash());
}

TEST(McModel, ActionEncodingRoundTrips) {
  for (int client = 0; client < 4; ++client) {
    for (int kind = 0; kind < 4; ++kind) {
      const Action action{client, static_cast<ActionKind>(kind)};
      const std::uint16_t e = action.encode();
      EXPECT_EQ(e / 4, client);
      EXPECT_EQ(static_cast<int>(e % 4), kind);
    }
  }
}

TEST(McModel, IndependenceIsComputeOnlyAcrossClients) {
  // Same-client actions never commute; cross-client pairs commute only
  // when at least one side is the purely local compute step.
  EXPECT_TRUE(independent({0, ActionKind::kCompute}, {1, ActionKind::kFetch}));
  EXPECT_TRUE(
      independent({0, ActionKind::kSubmit}, {1, ActionKind::kCompute}));
  EXPECT_FALSE(
      independent({0, ActionKind::kCompute}, {0, ActionKind::kSubmit}));
  EXPECT_FALSE(independent({0, ActionKind::kFetch}, {1, ActionKind::kFetch}));
  EXPECT_FALSE(independent({0, ActionKind::kSubmit}, {1, ActionKind::kDie}));
}

// --- exploration ------------------------------------------------------------

TEST(McExplorer, CleanDefaultConfigPassesWithBroadCoverage) {
  // The acceptance config: 3 clients, 3 workunits, one death budget. All
  // invariants hold and the search is genuinely exhaustive — well past a
  // thousand causally distinct interleavings, no bound hit.
  ExploreConfig config;
  config.model.max_deaths = 1;
  const ExploreResult result = Explorer(config).run();
  EXPECT_FALSE(result.violation.has_value());
  EXPECT_GE(result.interleavings, 1000u);
  EXPECT_GT(result.terminal_states, 0u);
  EXPECT_FALSE(result.depth_bound_hit);
  EXPECT_FALSE(result.state_bound_hit);
}

TEST(McExplorer, CountersAreDeterministicAcrossRuns) {
  ExploreConfig config;
  config.model.max_deaths = 1;
  const ExploreResult first = Explorer(config).run();
  const ExploreResult second = Explorer(config).run();
  EXPECT_EQ(first.states_visited, second.states_visited);
  EXPECT_EQ(first.distinct_states, second.distinct_states);
  EXPECT_EQ(first.transitions, second.transitions);
  EXPECT_EQ(first.interleavings, second.interleavings);
  EXPECT_EQ(first.sleep_pruned, second.sleep_pruned);
  EXPECT_EQ(first.visited_pruned, second.visited_pruned);
  EXPECT_EQ(format_summary(config, first), format_summary(config, second));
}

TEST(McExplorer, PruningShrinksTheSearchWithoutChangingTheVerdict) {
  ExploreConfig pruned;
  pruned.model = small_config();
  ExploreConfig full = pruned;
  full.use_sleep_sets = false;
  full.use_state_cache = false;
  const ExploreResult with_pruning = Explorer(pruned).run();
  const ExploreResult without = Explorer(full).run();
  EXPECT_FALSE(with_pruning.violation.has_value());
  EXPECT_FALSE(without.violation.has_value());
  EXPECT_GT(with_pruning.sleep_pruned + with_pruning.visited_pruned, 0u);
  EXPECT_LT(with_pruning.transitions, without.transitions);
}

TEST(McExplorer, DepthBoundIsRespectedAndReported) {
  ExploreConfig config;
  config.model = small_config();
  config.max_depth = 3;
  const ExploreResult result = Explorer(config).run();
  EXPECT_TRUE(result.depth_bound_hit);
  EXPECT_LE(result.max_depth_reached, 3);
}

TEST(McExplorer, StateBoundStopsTheSearch) {
  ExploreConfig config;
  config.model.max_deaths = 1;
  config.max_states = 50;
  const ExploreResult result = Explorer(config).run();
  EXPECT_TRUE(result.state_bound_hit);
  EXPECT_LE(result.states_visited, 50u);
}

// --- seeded faults ----------------------------------------------------------

TEST(McFaults, DoubleCreditIsCaughtAsQuorumBoundViolation) {
  // The fault grants a post-validation matching result credit again. The
  // per-pair rule cannot see it (the late client had no prior grant), but
  // the workunit now paid out quorum+1 grants.
  ExploreConfig config;
  config.model.clients = 3;
  config.model.workunits = 1;
  config.model.replication = 3;
  config.model.quorum = 2;
  config.model.max_deaths = 0;
  config.model.fault = grid::InjectedFault::kDoubleCredit;
  const ExploreResult result = Explorer(config).run();
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->invariant, "credit-quorum-bound");
  EXPECT_FALSE(result.violating_schedule.empty());
}

TEST(McFaults, LostWorkunitIsCaughtAsConservationViolation) {
  ExploreConfig config;
  config.model.clients = 2;
  config.model.workunits = 1;
  config.model.max_deaths = 1;
  config.model.fault = grid::InjectedFault::kLostWorkunit;
  const ExploreResult result = Explorer(config).run();
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->invariant, "workunit-conservation");
  EXPECT_FALSE(result.violating_schedule.empty());
}

// --- schedules --------------------------------------------------------------

TEST(McSchedule, RenderParseRenderIsByteIdentical) {
  ExploreConfig config;
  config.model.clients = 2;
  config.model.workunits = 1;
  config.model.max_deaths = 1;
  config.model.fault = grid::InjectedFault::kLostWorkunit;
  const ExploreResult result = Explorer(config).run();
  ASSERT_TRUE(result.violation.has_value());
  const std::string rendered = render_schedule(
      config.model, result.violating_schedule, &*result.violation);
  std::string error;
  const auto parsed = parse_schedule(rendered, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const std::string round_tripped =
      render_schedule(parsed->model, parsed->steps,
                      parsed->violation ? &*parsed->violation : nullptr);
  EXPECT_EQ(rendered, round_tripped);
}

TEST(McSchedule, ViolatingScheduleReplaysToTheRecordedViolation) {
  ExploreConfig config;
  config.model.clients = 3;
  config.model.workunits = 1;
  config.model.replication = 3;
  config.model.quorum = 2;
  config.model.max_deaths = 0;
  config.model.fault = grid::InjectedFault::kDoubleCredit;
  const ExploreResult result = Explorer(config).run();
  ASSERT_TRUE(result.violation.has_value());
  Schedule schedule;
  schedule.model = config.model;
  schedule.steps = result.violating_schedule;
  schedule.violation = result.violation;
  const ReplayResult replay = replay_schedule(schedule);
  EXPECT_TRUE(replay.ok) << replay.message;
}

TEST(McSchedule, CleanScheduleReplaysClean) {
  ModelConfig model = small_config();
  const std::vector<Action> steps = {
      {0, ActionKind::kFetch},   {1, ActionKind::kFetch},
      {0, ActionKind::kCompute}, {1, ActionKind::kCompute},
      {0, ActionKind::kSubmit},  {1, ActionKind::kSubmit},
  };
  std::string error;
  const auto parsed =
      parse_schedule(render_schedule(model, steps, nullptr), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const ReplayResult replay = replay_schedule(*parsed);
  EXPECT_TRUE(replay.ok) << replay.message;
}

TEST(McSchedule, ParseRejectsGarbage) {
  std::string error;
  EXPECT_FALSE(parse_schedule("not a schedule\n", &error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace vgrid::mc
