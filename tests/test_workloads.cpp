// Tests for the remaining workloads: Matrix, IOBench (real file I/O),
// NetBench (real loopback sockets), the FFT, and the Einstein worker with
// its checkpointable program.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "workloads/einstein/fft.hpp"
#include "workloads/einstein/worker.hpp"
#include "workloads/iobench.hpp"
#include "workloads/matrix.hpp"
#include "workloads/netbench.hpp"

namespace vgrid::workloads {
namespace {

// ---- Matrix -----------------------------------------------------------------

TEST(Matrix, MultiplyMatchesHandComputedResult) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{5, 6, 7, 8};
  std::vector<double> c(4);
  MatrixBenchmark::multiply(a, b, c, 2);
  EXPECT_DOUBLE_EQ(c[0], 19);
  EXPECT_DOUBLE_EQ(c[1], 22);
  EXPECT_DOUBLE_EQ(c[2], 43);
  EXPECT_DOUBLE_EQ(c[3], 50);
}

TEST(Matrix, IdentityIsNeutral) {
  const std::size_t n = 16;
  std::vector<double> identity(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) identity[i * n + i] = 1.0;
  std::vector<double> b(n * n);
  for (std::size_t i = 0; i < n * n; ++i) b[i] = static_cast<double>(i);
  std::vector<double> c(n * n);
  MatrixBenchmark::multiply(identity, b, c, n);
  EXPECT_EQ(c, b);
}

TEST(Matrix, NativeRunProducesChecksumAndTiming) {
  MatrixBenchmark bench(64);
  const NativeResult result = bench.run_native();
  EXPECT_GT(result.elapsed_seconds, 0.0);
  EXPECT_NE(result.checksum, 0u);
  EXPECT_DOUBLE_EQ(result.operations, 2.0 * 64 * 64 * 64);
}

TEST(Matrix, DeterministicChecksumPerSeed) {
  EXPECT_EQ(MatrixBenchmark(32, 9).run_native().checksum,
            MatrixBenchmark(32, 9).run_native().checksum);
  EXPECT_NE(MatrixBenchmark(32, 9).run_native().checksum,
            MatrixBenchmark(32, 10).run_native().checksum);
}

TEST(Matrix, RejectsZeroSize) {
  EXPECT_THROW(MatrixBenchmark(0), util::ConfigError);
}

TEST(Matrix, SimulatedInstructionsScaleCubically) {
  EXPECT_NEAR(MatrixBenchmark(1024).simulated_instructions() /
                  MatrixBenchmark(512).simulated_instructions(),
              8.0, 1e-9);
}

// ---- IOBench -----------------------------------------------------------------

TEST(IoBench, SweepDoublesFrom128KTo32M) {
  const IoBench bench;
  const auto sizes = bench.file_sizes();
  ASSERT_EQ(sizes.size(), 9u);  // 128K .. 32M
  EXPECT_EQ(sizes.front(), 128u * 1024u);
  EXPECT_EQ(sizes.back(), 32u * 1024u * 1024u);
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i], sizes[i - 1] * 2);
  }
}

TEST(IoBench, NativeRowsMeasureRealFiles) {
  IoBenchConfig config;
  config.min_file_bytes = 64 * 1024;
  config.max_file_bytes = 256 * 1024;  // keep the test fast
  IoBench bench(config);
  const auto rows = bench.run_native_rows();
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    EXPECT_GT(row.write_seconds, 0.0);
    EXPECT_GT(row.read_seconds, 0.0);
    EXPECT_GT(row.write_mb_per_s(), 0.0);
  }
}

TEST(IoBench, ProgramAlternatesCpuAndDiskSteps) {
  IoBenchConfig config;
  config.min_file_bytes = 128 * 1024;
  config.max_file_bytes = 128 * 1024;
  IoBench bench(config);
  auto program = bench.make_program();
  EXPECT_TRUE(std::holds_alternative<os::ComputeStep>(program->next()));
  const os::Step write = program->next();
  const auto* disk_write = std::get_if<os::DiskStep>(&write);
  ASSERT_NE(disk_write, nullptr);
  EXPECT_EQ(disk_write->op, hw::DiskOp::kWrite);
  EXPECT_TRUE(std::holds_alternative<os::ComputeStep>(program->next()));
  const os::Step read = program->next();
  const auto* disk_read = std::get_if<os::DiskStep>(&read);
  ASSERT_NE(disk_read, nullptr);
  EXPECT_EQ(disk_read->op, hw::DiskOp::kRead);
  EXPECT_TRUE(std::holds_alternative<os::DoneStep>(program->next()));
}

TEST(IoBench, PageCacheModeAbsorbsSmallReread) {
  IoBenchConfig config;
  config.min_file_bytes = 128 * 1024;
  config.max_file_bytes = 128 * 1024;
  config.use_page_cache = true;
  IoBench bench(config);
  auto program = bench.make_program();
  // With caching the write is absorbed until fsync and the read after
  // drop_clean still hits the disk; count the disk steps.
  int disk_steps = 0;
  while (true) {
    const os::Step step = program->next();
    if (std::holds_alternative<os::DoneStep>(step)) break;
    if (std::holds_alternative<os::DiskStep>(step)) ++disk_steps;
  }
  EXPECT_GE(disk_steps, 1);
}

TEST(IoBench, AbsorbedModeSkipsDiskForCachedData) {
  IoBenchConfig config;
  config.min_file_bytes = 128 * 1024;
  config.max_file_bytes = 128 * 1024;
  config.use_page_cache = true;
  config.sync_every_file = false;  // no fsync, warm cache
  IoBench bench(config);
  auto program = bench.make_program();
  std::uint64_t disk_bytes = 0;
  while (true) {
    const os::Step step = program->next();
    if (std::holds_alternative<os::DoneStep>(step)) break;
    if (const auto* disk = std::get_if<os::DiskStep>(&step)) {
      disk_bytes += disk->bytes;
    }
  }
  // A 128 KB file fits entirely in the cache: no device traffic at all.
  EXPECT_EQ(disk_bytes, 0u);
}

TEST(IoBench, SyncModeAlwaysReachesDisk) {
  IoBenchConfig config;
  config.min_file_bytes = 128 * 1024;
  config.max_file_bytes = 128 * 1024;
  config.use_page_cache = true;
  config.sync_every_file = true;
  IoBench bench(config);
  auto program = bench.make_program();
  std::uint64_t disk_bytes = 0;
  while (true) {
    const os::Step step = program->next();
    if (std::holds_alternative<os::DoneStep>(step)) break;
    if (const auto* disk = std::get_if<os::DiskStep>(&step)) {
      disk_bytes += disk->bytes;
    }
  }
  // fsync + drop-caches: both the write and the re-read hit the device.
  EXPECT_EQ(disk_bytes, 2u * 128u * 1024u);
}

TEST(IoBench, RejectsBadConfig) {
  IoBenchConfig config;
  config.min_file_bytes = 0;
  EXPECT_THROW(IoBench{config}, util::ConfigError);
}

// ---- NetBench ----------------------------------------------------------------

TEST(NetBench, TcpLoopbackDeliversAllBytes) {
  NetBenchConfig config;
  config.stream_bytes = 1 * 1000 * 1000;
  NetBench bench(config);
  const NativeResult result = bench.run_native();
  EXPECT_DOUBLE_EQ(result.operations, 1e6);   // bytes sent
  EXPECT_EQ(result.checksum, 1000u * 1000u);  // bytes received
  EXPECT_GT(NetBench::throughput_mbps(result), 0.0);
}

TEST(NetBench, UdpLoopbackTransfers) {
  NetBenchConfig config;
  config.stream_bytes = 256 * 1024;
  config.chunk_bytes = 8 * 1024;
  config.protocol = NetProtocol::kUdp;
  NetBench bench(config);
  const NativeResult result = bench.run_native();
  EXPECT_DOUBLE_EQ(result.operations, 256.0 * 1024.0);
  // UDP may drop datagrams; the receiver count is bounded by the send.
  EXPECT_LE(result.checksum, 256u * 1024u);
}

TEST(NetBench, ProgramEmitsStackCpuThenTransfer) {
  NetBench bench;
  auto program = bench.make_program();
  EXPECT_TRUE(std::holds_alternative<os::ComputeStep>(program->next()));
  const os::Step step = program->next();
  const auto* net = std::get_if<os::NetStep>(&step);
  ASSERT_NE(net, nullptr);
  EXPECT_EQ(net->bytes, 10u * 1000u * 1000u);
}

TEST(NetBench, RejectsBadConfig) {
  NetBenchConfig config;
  config.stream_bytes = 0;
  EXPECT_THROW(NetBench{config}, util::ConfigError);
}

// ---- FFT --------------------------------------------------------------------

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<einstein::Complex> data(3);
  EXPECT_THROW(einstein::fft(data, false), util::ConfigError);
}

TEST(Fft, ImpulseTransformsToFlatSpectrum) {
  std::vector<einstein::Complex> data(8, 0.0);
  data[0] = 1.0;
  einstein::fft(data, false);
  for (const auto& x : data) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, InverseRecoversInput) {
  util::Xoshiro256 rng(44);
  std::vector<einstein::Complex> data(256);
  for (auto& x : data) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto original = data;
  einstein::fft(data, false);
  einstein::fft(data, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-9);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-9);
  }
}

TEST(Fft, SineShowsUpInItsBin) {
  const std::size_t n = 1024;
  std::vector<double> samples(n);
  const double bin = 37.0;
  for (std::size_t i = 0; i < n; ++i) {
    samples[i] = std::sin(2.0 * std::numbers::pi * bin *
                          static_cast<double>(i) / static_cast<double>(n));
  }
  const auto power = einstein::power_spectrum(samples);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < power.size(); ++i) {
    if (power[i] > power[peak]) peak = i;
  }
  EXPECT_EQ(peak, 37u);
}

TEST(Fft, ParsevalHolds) {
  util::Xoshiro256 rng(45);
  std::vector<einstein::Complex> data(128);
  double time_energy = 0;
  for (auto& x : data) {
    x = {rng.uniform(-1, 1), 0.0};
    time_energy += std::norm(x);
  }
  einstein::fft(data, false);
  double freq_energy = 0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(data.size()), time_energy,
              1e-9);
}

// ---- Einstein worker -----------------------------------------------------------

einstein::EinsteinConfig small_einstein() {
  einstein::EinsteinConfig config;
  config.samples = 2048;
  config.template_count = 12;
  config.signal_frequency_bin = 101.4;
  config.signal_amplitude = 0.8;
  return config;
}

TEST(Einstein, SearchDetectsInjectedSignal) {
  // A dense enough template bank (spacing < 1 bin) must find the injected
  // signal: mismatched sine templates decorrelate within ~1 bin.
  einstein::EinsteinConfig config = small_einstein();
  config.template_count = 49;  // +-24 bins -> 1-bin spacing
  const einstein::EinsteinWorker worker(config);
  const einstein::Detection detection = worker.search();
  EXPECT_NEAR(detection.frequency_bin, 101.4, 2.0);
  EXPECT_GT(detection.snr, 3.0);
}

TEST(Einstein, ResumedSearchCoversRemainingTemplates) {
  const einstein::EinsteinWorker worker(small_einstein());
  std::size_t processed = 0;
  (void)worker.search(8, &processed);
  EXPECT_EQ(processed, 4u);
}

TEST(Einstein, RejectsBadConfig) {
  einstein::EinsteinConfig config;
  config.samples = 1000;  // not a power of two
  EXPECT_THROW(einstein::EinsteinWorker{config}, util::ConfigError);
}

TEST(EinsteinProgram, FiniteProgramEndsAfterAllTemplates) {
  einstein::EinsteinProgram program(small_einstein(), false);
  int compute_steps = 0;
  while (std::holds_alternative<os::ComputeStep>(program.next())) {
    ++compute_steps;
  }
  EXPECT_EQ(compute_steps, 2);  // 12 templates / checkpoint_every 8 -> 8+4
}

TEST(EinsteinProgram, ContinuousProgramFetchesNewWorkunits) {
  einstein::EinsteinProgram program(small_einstein(), true);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(std::holds_alternative<os::ComputeStep>(program.next()));
  }
  EXPECT_GE(program.workunits_completed(), 1u);
}

TEST(EinsteinProgram, SerializeDeserializeRoundTrip) {
  const auto config = small_einstein();
  einstein::EinsteinProgram program(config, false);
  (void)program.next();  // advance one batch
  const std::string state = program.serialize();
  const auto restored = einstein::EinsteinProgram::deserialize(config, state);
  EXPECT_EQ(restored->next_template(), program.next_template());
}

TEST(EinsteinProgram, DeserializeRejectsMismatchedConfig) {
  const auto config = small_einstein();
  einstein::EinsteinProgram program(config, false);
  const std::string state = program.serialize();
  einstein::EinsteinConfig other = config;
  other.template_count = 99;
  EXPECT_THROW(einstein::EinsteinProgram::deserialize(other, state),
               util::ConfigError);
}

TEST(EinsteinProgram, DeserializeRejectsGarbage) {
  EXPECT_THROW(
      einstein::EinsteinProgram::deserialize(small_einstein(), "nonsense"),
      util::ConfigError);
}

// Detection must hold across signal strengths down to a realistic floor.
class EinsteinAmplitudeSweep : public ::testing::TestWithParam<double> {};

TEST_P(EinsteinAmplitudeSweep, FindsSignalNearInjection) {
  einstein::EinsteinConfig config = small_einstein();
  config.template_count = 49;  // 1-bin spacing
  config.signal_amplitude = GetParam();
  config.samples = 4096;       // more integration for the weak signals
  const einstein::EinsteinWorker worker(config);
  const einstein::Detection detection = worker.search();
  EXPECT_NEAR(detection.frequency_bin, config.signal_frequency_bin, 2.0)
      << "amplitude " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Amplitudes, EinsteinAmplitudeSweep,
                         ::testing::Values(0.3, 0.5, 0.8, 1.5));

TEST(Einstein, SnrGrowsWithAmplitude) {
  einstein::EinsteinConfig config = small_einstein();
  config.template_count = 49;
  config.signal_amplitude = 0.4;
  const double weak = einstein::EinsteinWorker(config).search().snr;
  config.signal_amplitude = 1.2;
  const double strong = einstein::EinsteinWorker(config).search().snr;
  EXPECT_GT(strong, weak * 1.5);
}

TEST(Einstein, WorkloadInterfaceConsistency) {
  einstein::EinsteinWorker worker(small_einstein());
  EXPECT_EQ(worker.name(), "einstein-worker");
  EXPECT_GT(worker.simulated_instructions(), 0.0);
  auto program = worker.make_program();
  EXPECT_TRUE(std::holds_alternative<os::ComputeStep>(program->next()));
}

}  // namespace
}  // namespace vgrid::workloads
