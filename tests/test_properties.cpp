// Property-based tests: invariants that must hold across swept parameter
// spaces — scheduler work conservation, machine service-load accounting,
// page-cache bookkeeping, wire-protocol robustness against arbitrary
// bytes, and event-queue stress determinism.

#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "grid/messages.hpp"
#include "guest/page_cache.hpp"
#include "hw/machine.hpp"
#include "os/scheduler.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace vgrid {
namespace {

// ---- scheduler work conservation ------------------------------------------------

class SchedulerConservation : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerConservation, WorkNeverExceedsMachineCapacity) {
  // N competing threads on 2 cores: total instructions retired can never
  // exceed cores x peak-rate x wall time, and every thread finishes.
  const int n = GetParam();
  core::Testbed testbed;
  std::vector<os::HostThread*> threads;
  const double work = 5e8;
  for (int i = 0; i < n; ++i) {
    os::ProgramBuilder builder;
    builder.compute(work, hw::mixes::sevenzip());
    threads.push_back(&testbed.scheduler().spawn(
        "t" + std::to_string(i),
        i % 2 == 0 ? os::PriorityClass::kNormal : os::PriorityClass::kIdle,
        builder.build()));
  }
  testbed.run_all();
  const double wall = sim::to_seconds(testbed.simulator().now());
  const double peak_rate = testbed.machine().chip().native_ips(
      hw::mixes::sevenzip().normalized());
  double total = 0.0;
  for (const auto* thread : threads) {
    EXPECT_TRUE(thread->done());
    EXPECT_NEAR(thread->instructions_done(), work, 1.0);
    total += thread->instructions_done();
  }
  EXPECT_LE(total, 2.0 * peak_rate * wall * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, SchedulerConservation,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(SchedulerConservation, CpuTimeBoundedByWallTimesCores) {
  core::Testbed testbed;
  std::vector<os::HostThread*> threads;
  for (int i = 0; i < 6; ++i) {
    os::ProgramBuilder builder;
    builder.compute(3e8, hw::mixes::nbench_int());
    threads.push_back(&testbed.scheduler().spawn(
        "t" + std::to_string(i), os::PriorityClass::kNormal,
        builder.build()));
  }
  testbed.run_all();
  const auto wall = testbed.simulator().now();
  sim::SimDuration total_cpu = 0;
  for (const auto* thread : threads) total_cpu += thread->cpu_time();
  EXPECT_LE(total_cpu, 2 * wall + 10);
  // And the machine was actually busy: at least 95% utilized.
  EXPECT_GE(static_cast<double>(total_cpu),
            0.95 * 2.0 * static_cast<double>(wall));
}

// ---- machine service-load accounting ----------------------------------------------

class ServiceLoadSweep : public ::testing::TestWithParam<double> {};

TEST_P(ServiceLoadSweep, SharesNeverExceedDemandOrCoreCapacity) {
  const double demand = GetParam();
  sim::Simulator simulator;
  hw::Machine machine(simulator);
  util::Xoshiro256 rng(static_cast<std::uint64_t>(demand * 1000));
  for (int combo = 0; combo < 16; ++combo) {
    for (int core = 0; core < machine.core_count(); ++core) {
      if (rng.chance(0.5)) {
        machine.set_occupancy(
            core, hw::CoreOccupancy{true, rng.uniform(0, 0.5),
                                    rng.uniform(0, 0.7), rng.chance(0.3)});
      } else {
        machine.clear_occupancy(core);
      }
    }
    machine.set_service_demand(demand);
    double total_share = 0.0;
    for (int core = 0; core < machine.core_count(); ++core) {
      const double share = machine.interrupt_share(core);
      EXPECT_GE(share, 0.0);
      EXPECT_LE(share, 1.0);
      total_share += share;
    }
    // The distributed share never exceeds the demand (capped per core).
    EXPECT_LE(total_share, demand + 1e-9);
    // Rate factors stay in (0, 1].
    for (int core = 0; core < machine.core_count(); ++core) {
      for (const bool vm_owned : {false, true}) {
        const double factor = machine.rate_factor(core, 0.6, vm_owned);
        EXPECT_GT(factor, 0.0);
        EXPECT_LE(factor, 1.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Demands, ServiceLoadSweep,
                         ::testing::Values(0.0, 0.1, 0.2, 0.6, 1.0, 1.8));

// ---- page cache bookkeeping ---------------------------------------------------------

class PageCacheSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(PageCacheSweep, InvariantsUnderRandomWorkload) {
  const auto [capacity_mb, dirty_ratio] = GetParam();
  guest::PageCache cache(capacity_mb * util::MiB, dirty_ratio);
  util::Xoshiro256 rng(capacity_mb * 31 +
                       static_cast<std::uint64_t>(dirty_ratio * 100));
  for (int op = 0; op < 500; ++op) {
    const std::string file = "f" + std::to_string(rng.below(12));
    const std::uint64_t bytes = (1 + rng.below(8)) * util::MiB;
    guest::AccessPlan plan;
    switch (rng.below(4)) {
      case 0: plan = cache.plan_read(file, bytes); break;
      case 1: plan = cache.plan_write(file, bytes); break;
      case 2: cache.flush(file); break;
      default: cache.drop_clean(); break;
    }
    // Core invariants after every operation.
    ASSERT_LE(cache.used(), cache.capacity());
    ASSERT_LE(cache.dirty(), cache.used());
    ASSERT_EQ(plan.cached_bytes + plan.disk_bytes,
              plan.cached_bytes + plan.disk_bytes);  // plan is well-formed
  }
  cache.flush_all();
  ASSERT_EQ(cache.dirty(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PageCacheSweep,
    ::testing::Combine(::testing::Values(std::uint64_t{8},
                                         std::uint64_t{64},
                                         std::uint64_t{160}),
                       ::testing::Values(0.2, 0.4, 0.9)));

// ---- protocol robustness -------------------------------------------------------------

TEST(ProtocolFuzz, RandomBytesNeverCrashParsers) {
  util::Xoshiro256 rng(777);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string line;
    const std::size_t length = rng.below(120);
    for (std::size_t i = 0; i < length; ++i) {
      line += static_cast<char>(rng.below(256));
    }
    // None of these may throw or crash; returning nullopt is fine.
    (void)grid::parse_work_request(line);
    (void)grid::parse_work_response(line);
    (void)grid::parse_submit_request(line);
    (void)grid::parse_submit_response(line);
    (void)grid::request_tag(line);
  }
}

TEST(ProtocolFuzz, EscapeUnescapeIdentityOnRandomStrings) {
  util::Xoshiro256 rng(778);
  for (int trial = 0; trial < 500; ++trial) {
    std::string raw;
    const std::size_t length = rng.below(200);
    for (std::size_t i = 0; i < length; ++i) {
      raw += static_cast<char>(rng.below(256));
    }
    ASSERT_EQ(grid::unescape_field(grid::escape_field(raw)), raw);
    // Escaped form must be framing-safe.
    const std::string escaped = grid::escape_field(raw);
    EXPECT_EQ(escaped.find('|'), std::string::npos);
    EXPECT_EQ(escaped.find('\n'), std::string::npos);
  }
}

// ---- event queue stress ----------------------------------------------------------------

TEST(EventQueueStress, RandomInsertCancelKeepsOrder) {
  util::Xoshiro256 rng(999);
  sim::EventQueue queue;
  std::vector<sim::EventId> live;
  for (int op = 0; op < 5000; ++op) {
    if (live.empty() || rng.chance(0.7)) {
      live.push_back(queue.push(
          static_cast<sim::SimTime>(rng.below(1'000'000)), [] {}));
    } else {
      const std::size_t index = rng.below(live.size());
      queue.cancel(live[index]);
      live.erase(live.begin() + static_cast<long>(index));
    }
  }
  sim::SimTime previous = -1;
  std::size_t popped = 0;
  while (!queue.empty()) {
    const auto fired = queue.pop();
    ASSERT_GE(fired.time, previous);
    previous = fired.time;
    ++popped;
  }
  EXPECT_EQ(popped, live.size());
}

TEST(EventQueueStress, DeterministicAcrossRuns) {
  auto run = [] {
    util::Xoshiro256 rng(4321);
    sim::Simulator simulator;
    std::vector<sim::SimTime> fire_times;
    std::function<void()> spawn = [&] {
      fire_times.push_back(simulator.now());
      if (fire_times.size() < 200) {
        simulator.schedule(
            static_cast<sim::SimDuration>(1 + rng.below(1000)), spawn);
        if (rng.chance(0.3)) {
          simulator.schedule(
              static_cast<sim::SimDuration>(1 + rng.below(1000)), spawn);
        }
      }
    };
    simulator.schedule(1, spawn);
    simulator.run_until(1'000'000'000);
    return fire_times;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace vgrid
