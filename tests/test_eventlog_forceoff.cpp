// Compiled with VGRID_EVENTLOG_FORCE_OFF (see tests/CMakeLists.txt): every
// EVT_* macro below must expand to `static_cast<void>(0)` — the caller
// installs a log and asserts it stays untouched even in a
// VGRID_EVENTLOG=ON build.

#include "obs/event_log.hpp"

namespace vgrid::obs::testing {

void run_force_off_lifecycle() {
  EVT_TRACE_OPEN(1, 0, "forceoff");
  EVT_APPEND(1, ::vgrid::obs::EventKind::kCreated, 0, 0, 0);
  EVT_APPEND_LINKED(1, ::vgrid::obs::EventKind::kDispatched, 0, 0, 0,
                    ::vgrid::obs::kPrevEvent);
  EVT_TRACE_CLOSE(1);
}

}  // namespace vgrid::obs::testing
