// Integration tests: every figure of the paper reproduced end-to-end with
// tolerance bands against the published values, the checkpoint/migration
// flow across hypervisors, and the full desktop-grid stack (server +
// client + Einstein + external timing) in one process.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <utility>

#include "core/experiments.hpp"
#include "core/testbed.hpp"
#include "grid/client.hpp"
#include "grid/server.hpp"
#include "timesvc/time_client.hpp"
#include "timesvc/time_server.hpp"
#include "util/strings.hpp"
#include "vmm/checkpoint.hpp"
#include "vmm/profile.hpp"
#include "vmm/virtual_machine.hpp"
#include "workloads/einstein/worker.hpp"

namespace vgrid {
namespace {

core::RunnerConfig test_runner() {
  core::RunnerConfig config;
  config.repetitions = 3;
  config.input_jitter = 0.005;
  return config;
}

std::map<std::string, core::FigureRow> rows_by_label(
    const core::FigureResult& figure) {
  std::map<std::string, core::FigureRow> map;
  for (const auto& row : figure.rows) map[row.label] = row;
  return map;
}

// ---- guest performance figures --------------------------------------------------

TEST(Figures, Fig1SevenZipWithinBandOfPaper) {
  const auto figure = core::fig1_7z(test_runner());
  ASSERT_EQ(figure.rows.size(), 4u);
  for (const auto& row : figure.rows) {
    ASSERT_TRUE(row.paper.has_value());
    // Shape criterion: within 10% of the paper's relative value.
    EXPECT_NEAR(row.measured, *row.paper, *row.paper * 0.10) << row.label;
  }
}

TEST(Figures, Fig2MatrixAllBelowQemu) {
  const auto figure = core::fig2_matrix(test_runner());
  ASSERT_EQ(figure.rows.size(), 8u);  // 4 environments x 2 sizes
  const auto rows = rows_by_label(figure);
  for (const char* size : {"512", "1024"}) {
    const double qemu = rows.at(util::format("qemu-%s", size)).measured;
    for (const char* env : {"vmplayer", "virtualbox", "virtualpc"}) {
      const double v =
          rows.at(util::format("%s-%s", env, size)).measured;
      EXPECT_LT(v, 1.25) << env;  // paper: "below 20%" (approx)
      EXPECT_LT(v, qemu);
    }
    EXPECT_NEAR(qemu, 1.30, 0.12);
  }
}

TEST(Figures, Fig3IoBenchSeverity) {
  const auto figure = core::fig3_iobench(test_runner());
  const auto rows = rows_by_label(figure);
  EXPECT_NEAR(rows.at("vmplayer").measured, 1.30, 0.15);
  EXPECT_NEAR(rows.at("virtualbox").measured, 2.0, 0.25);
  EXPECT_NEAR(rows.at("virtualpc").measured, 2.05, 0.25);
  EXPECT_NEAR(rows.at("qemu").measured, 4.9, 0.5);
}

TEST(Figures, Fig4NetworkAbsoluteThroughputs) {
  const auto figure = core::fig4_netbench(test_runner());
  const auto rows = rows_by_label(figure);
  // The paper reports these to two decimals; we require ~3%.
  for (const auto& [label, row] : rows) {
    ASSERT_TRUE(row.paper.has_value()) << label;
    EXPECT_NEAR(row.measured, *row.paper, *row.paper * 0.03) << label;
  }
  // And the qualitative claims: bridged near native, VBox ~75x slower.
  EXPECT_GT(rows.at("vmplayer-bridged").measured,
            0.97 * rows.at("native").measured);
  EXPECT_GT(rows.at("native").measured / rows.at("virtualbox").measured,
            60.0);
}

// ---- host impact figures ----------------------------------------------------------

TEST(Figures, Fig5MemOverheadUnderFivePercent) {
  const auto figure = core::fig5_mem_index(test_runner());
  ASSERT_EQ(figure.rows.size(), 8u);  // 4 envs x 2 priorities
  for (const auto& row : figure.rows) {
    EXPECT_GT(row.measured, 0.0) << row.label;
    EXPECT_LT(row.measured, 5.0) << row.label;
  }
}

TEST(Figures, Fig6IntAroundTwoPercentFpNearZero) {
  const auto figure = core::fig6_int_fp_index(test_runner());
  for (const auto& row : figure.rows) {
    if (row.label.rfind("FP ", 0) == 0) {
      // "practically no overhead": under 1% except QEMU, whose host-wide
      // timer polling adds a uniform ~0.75% tax on top.
      EXPECT_LT(row.measured, 1.5) << row.label;
    } else {
      EXPECT_NEAR(row.measured, 2.0, 1.5) << row.label;
    }
  }
}

TEST(Figures, Fig7CpuAvailability) {
  const auto figure = core::fig7_cpu_available(test_runner());
  const auto rows = rows_by_label(figure);
  EXPECT_NEAR(rows.at("no-vm 1T").measured, 100.0, 1.0);
  EXPECT_NEAR(rows.at("no-vm 2T").measured, 180.0, 8.0);
  EXPECT_NEAR(rows.at("vmplayer 2T").measured, 120.0, 6.0);
  for (const char* env : {"qemu", "virtualbox", "virtualpc"}) {
    EXPECT_NEAR(rows.at(std::string(env) + " 2T").measured, 160.0, 6.0)
        << env;
    EXPECT_GT(rows.at(std::string(env) + " 1T").measured, 95.0) << env;
  }
}

TEST(Figures, Fig8MipsRatios) {
  const auto figure = core::fig8_mips_ratio(test_runner());
  const auto rows = rows_by_label(figure);
  EXPECT_NEAR(rows.at("vmplayer").measured, 0.70, 0.04);
  for (const char* env : {"qemu", "virtualbox", "virtualpc"}) {
    EXPECT_NEAR(rows.at(env).measured, 0.90, 0.04) << env;
  }
}

TEST(Figures, Fig3BySizeSweepCoversAllSizesAndEnvironments) {
  const auto figure = core::fig3_iobench_by_size(test_runner());
  ASSERT_EQ(figure.rows.size(), 12u);  // 3 sizes x 4 environments
  for (const auto& row : figure.rows) {
    EXPECT_GT(row.measured, 1.0) << row.label;  // every VM is slower
  }
  // Small files pay the per-request emulation overhead on top of the
  // bandwidth multiplier, so they are at least as slow as large files.
  const auto rows = rows_by_label(figure);
  for (const char* env : {"vmplayer", "qemu", "virtualbox", "virtualpc"}) {
    const double small = rows.at(std::string(env) + " 128 KB").measured;
    const double large = rows.at(std::string(env) + " 32 MB").measured;
    EXPECT_GE(small, large * 0.99) << env;
  }
}

TEST(Figures, AllFiguresProduceRows) {
  const auto figures = core::all_figures(test_runner());
  ASSERT_EQ(figures.size(), 8u);
  for (const auto& figure : figures) {
    EXPECT_FALSE(figure.rows.empty()) << figure.id;
    EXPECT_FALSE(figure.title.empty()) << figure.id;
  }
}

TEST(Figures, HeadlineCorrelationFastGuestHeavyHost) {
  // The paper's central observation: the environment with the best guest
  // performance (VmPlayer, Fig. 1) causes the highest host impact
  // (Figs. 7/8).
  const auto fig1 = core::fig1_7z(test_runner());
  const auto fig8 = core::fig8_mips_ratio(test_runner());
  const auto guests = rows_by_label(fig1);
  const auto hosts = rows_by_label(fig8);
  for (const char* other : {"qemu", "virtualbox", "virtualpc"}) {
    EXPECT_LT(guests.at("vmplayer").measured, guests.at(other).measured);
    EXPECT_LT(hosts.at("vmplayer").measured, hosts.at(other).measured);
  }
}

// ---- checkpoint / migration --------------------------------------------------------

TEST(Migration, GuestResumesOnSecondMachineUnderDifferentVmm) {
  namespace einstein = workloads::einstein;
  einstein::EinsteinConfig config;
  config.template_count = 256;

  core::Testbed machine_a;
  vmm::VirtualMachine vm_a(machine_a.scheduler(),
                           vmm::profiles::vmplayer());
  auto owned = std::make_unique<einstein::EinsteinProgram>(config, false);
  auto* program = owned.get();
  vm_a.run_guest("wu", std::move(owned));
  machine_a.simulator().run_until(sim::from_seconds(0.02));
  const std::size_t done_before = program->next_template();
  ASSERT_GT(done_before, 0u);
  ASSERT_LT(done_before, config.template_count);

  const auto path = std::filesystem::temp_directory_path() /
                    "vgrid-integration-migration.vmimg";
  vmm::save_image(path.string(),
                  vm_a.checkpoint(einstein::EinsteinProgram::kGuestKind));
  vm_a.power_off();

  const vmm::VmImage image = vmm::load_image(path.string());
  EXPECT_EQ(image.vmm_name, "vmplayer");
  core::Testbed machine_b;
  vmm::VirtualMachine vm_b(machine_b.scheduler(), vmm::profiles::qemu());
  auto restored =
      einstein::EinsteinProgram::deserialize(config, image.guest_state);
  EXPECT_EQ(restored->next_template(), done_before);
  auto& vcpu = vm_b.run_guest("wu", std::move(restored));
  EXPECT_GT(machine_b.run_until_done(vcpu), 0.0);
  std::filesystem::remove(path);
}

// ---- full desktop-grid stack ---------------------------------------------------------

TEST(FullStack, GridCrunchWithExternalTiming) {
  timesvc::TimeServer time_server;
  timesvc::TimeClient time_client(time_server.port());
  timesvc::ExternalStopwatch stopwatch(time_client);

  grid::ProjectServer server;
  server.add_workunit(grid::Workunit{0, "einstein", "seed=5", 2, 2});

  const auto app = [](const std::string& payload) {
    workloads::einstein::EinsteinConfig config;
    config.samples = 1024;
    config.template_count = 8;
    config.seed = std::stoull(payload.substr(payload.find('=') + 1));
    const workloads::einstein::EinsteinWorker worker(config);
    const auto detection = worker.search();
    return util::format("t=%zu", detection.template_index);
  };

  stopwatch.start();
  grid::GridClient alice(server.port(), "alice");
  alice.register_app("einstein", app);
  grid::GridClient bob(server.port(), "bob");
  bob.register_app("einstein", app);
  EXPECT_TRUE(alice.run_once());
  EXPECT_TRUE(bob.run_once());
  const std::int64_t elapsed = stopwatch.stop();

  EXPECT_GT(elapsed, 0);
  EXPECT_EQ(server.stats().workunits_validated, 1u);
  const auto canonical = server.canonical_result(1);
  ASSERT_TRUE(canonical.has_value());
  EXPECT_EQ(canonical->rfind("t=", 0), 0u);
}

}  // namespace
}  // namespace vgrid
