// Unit tests for the host-OS model: thread programs and the XP-style
// preemptive priority scheduler, including the timing identities the
// experiments rely on.

#include <gtest/gtest.h>

#include "hw/machine.hpp"
#include "os/program.hpp"
#include "os/scheduler.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace vgrid::os {
namespace {

struct Bed {
  sim::Simulator simulator;
  hw::Machine machine{simulator};
  PriorityScheduler scheduler{machine};

  double run_all() {
    while (!scheduler.all_done() && simulator.pending_events() > 0) {
      simulator.step();
    }
    return sim::to_seconds(simulator.now());
  }
};

struct SchedulerFixture : ::testing::Test, Bed {};

std::unique_ptr<Program> compute_program(double instructions,
                                         hw::InstructionMix mix =
                                             hw::mixes::idle_spin()) {
  ProgramBuilder builder;
  builder.compute(instructions, mix);
  return builder.build();
}

// ---- programs -----------------------------------------------------------------

TEST(Program, StepListReturnsStepsThenDone) {
  ProgramBuilder builder;
  builder.compute(100, hw::mixes::idle_spin()).sleep(5);
  auto program = builder.build();
  EXPECT_TRUE(std::holds_alternative<ComputeStep>(program->next()));
  EXPECT_TRUE(std::holds_alternative<SleepStep>(program->next()));
  EXPECT_TRUE(std::holds_alternative<DoneStep>(program->next()));
  EXPECT_TRUE(std::holds_alternative<DoneStep>(program->next()));
}

TEST(Program, BuilderRepeatLast) {
  ProgramBuilder builder;
  builder.disk_read(4096);
  builder.repeat_last(3);
  auto program = builder.build();
  int disk_steps = 0;
  while (std::holds_alternative<DiskStep>(program->next())) ++disk_steps;
  EXPECT_EQ(disk_steps, 3);
}

TEST(Program, RepeatLastOnEmptyThrows) {
  ProgramBuilder builder;
  EXPECT_THROW(builder.repeat_last(2), util::ConfigError);
}

TEST(Program, InfiniteComputeNeverEnds) {
  InfiniteComputeProgram program(1000, hw::mixes::einstein());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(std::holds_alternative<ComputeStep>(program.next()));
  }
}

TEST(Program, GeneratorProgramDrivesFromCallable) {
  int remaining = 2;
  GeneratorProgram program([&]() -> Step {
    if (remaining-- > 0) return ComputeStep{10, hw::mixes::idle_spin()};
    return DoneStep{};
  });
  EXPECT_TRUE(std::holds_alternative<ComputeStep>(program.next()));
  EXPECT_TRUE(std::holds_alternative<ComputeStep>(program.next()));
  EXPECT_TRUE(std::holds_alternative<DoneStep>(program.next()));
}

// ---- scheduler: basic execution -------------------------------------------------

TEST_F(SchedulerFixture, SingleThreadRunsToCompletion) {
  auto& thread = scheduler.spawn("t0", PriorityClass::kNormal,
                                 compute_program(1e9));
  run_all();
  EXPECT_TRUE(thread.done());
  EXPECT_GT(thread.finish_time(), 0);
  EXPECT_NEAR(thread.instructions_done(), 1e9, 1.0);
}

TEST_F(SchedulerFixture, SingleThreadDurationMatchesRate) {
  const hw::InstructionMix mix = hw::mixes::idle_spin();
  const double instructions = 2.4e9;
  auto& thread = scheduler.spawn("t0", PriorityClass::kNormal,
                                 compute_program(instructions, mix));
  run_all();
  const double expected =
      instructions / machine.chip().native_ips(mix.normalized());
  EXPECT_NEAR(sim::to_seconds(thread.finish_time()), expected,
              expected * 1e-6);
}

TEST_F(SchedulerFixture, TwoThreadsUseBothCores) {
  auto& a = scheduler.spawn("a", PriorityClass::kNormal,
                            compute_program(1e9));
  auto& b = scheduler.spawn("b", PriorityClass::kNormal,
                            compute_program(1e9));
  simulator.step();  // let placement happen
  EXPECT_NE(a.core(), b.core());
  run_all();
  EXPECT_TRUE(a.done());
  EXPECT_TRUE(b.done());
}

TEST_F(SchedulerFixture, CacheContentionSlowsCorunners) {
  // One memory-heavy thread alone, then two together: each must be slower
  // together than alone (the paper's 180%-of-200% effect).
  const auto mix = hw::mixes::sevenzip();
  auto& solo = scheduler.spawn("solo", PriorityClass::kNormal,
                               compute_program(1e9, mix));
  run_all();
  const double solo_seconds = sim::to_seconds(solo.finish_time());

  Bed second;
  auto& a = second.scheduler.spawn("a", PriorityClass::kNormal,
                                   compute_program(1e9, mix));
  second.scheduler.spawn("b", PriorityClass::kNormal,
                         compute_program(1e9, mix));
  second.run_all();
  const double pair_seconds = sim::to_seconds(a.finish_time());
  EXPECT_GT(pair_seconds, solo_seconds * 1.05);
  EXPECT_LT(pair_seconds, solo_seconds * 1.5);  // still mostly parallel
}

TEST_F(SchedulerFixture, ThreeThreadsShareTwoCoresFairly) {
  std::vector<HostThread*> threads;
  for (int i = 0; i < 3; ++i) {
    threads.push_back(&scheduler.spawn("t" + std::to_string(i),
                                       PriorityClass::kNormal,
                                       compute_program(1e9)));
  }
  run_all();
  // Round robin: all finish, with finish times within ~30% of each other.
  double min_finish = 1e18, max_finish = 0;
  for (const auto* thread : threads) {
    EXPECT_TRUE(thread->done());
    min_finish = std::min(min_finish,
                          sim::to_seconds(thread->finish_time()));
    max_finish = std::max(max_finish,
                          sim::to_seconds(thread->finish_time()));
  }
  EXPECT_LT(max_finish / min_finish, 1.3);
  EXPECT_GT(scheduler.context_switches(), 0u);
}

TEST_F(SchedulerFixture, IdleClassYieldsToNormal) {
  // Two normal threads saturate both cores; an idle thread must wait.
  auto& idle = scheduler.spawn("idle", PriorityClass::kIdle,
                               compute_program(1e8));
  auto& n0 = scheduler.spawn("n0", PriorityClass::kNormal,
                             compute_program(1e9));
  auto& n1 = scheduler.spawn("n1", PriorityClass::kNormal,
                             compute_program(1e9));
  run_all();
  EXPECT_TRUE(idle.done());
  EXPECT_GE(idle.finish_time(), n0.finish_time());
  EXPECT_GE(idle.finish_time(), n1.finish_time());
}

TEST_F(SchedulerFixture, IdleClassRunsOnFreeCore) {
  auto& idle = scheduler.spawn("idle", PriorityClass::kIdle,
                               compute_program(1e8));
  auto& normal = scheduler.spawn("n0", PriorityClass::kNormal,
                                 compute_program(1e8));
  run_all();
  EXPECT_TRUE(idle.done());
  // With a free core the idle thread finishes about when the normal does.
  EXPECT_NEAR(sim::to_seconds(idle.finish_time()),
              sim::to_seconds(normal.finish_time()),
              sim::to_seconds(normal.finish_time()) * 0.2);
}

TEST_F(SchedulerFixture, HigherClassPreemptsRunningLower) {
  auto& idle = scheduler.spawn("idle", PriorityClass::kIdle,
                               compute_program(5e9));
  scheduler.spawn("idle2", PriorityClass::kIdle, compute_program(5e9));
  simulator.step();
  EXPECT_EQ(idle.state(), ThreadState::kRunning);
  // Two normal threads arrive and must take both cores.
  auto& n0 = scheduler.spawn("n0", PriorityClass::kNormal,
                             compute_program(1e8));
  auto& n1 = scheduler.spawn("n1", PriorityClass::kNormal,
                             compute_program(1e8));
  EXPECT_EQ(n0.state(), ThreadState::kRunning);
  EXPECT_EQ(n1.state(), ThreadState::kRunning);
  EXPECT_NE(idle.state(), ThreadState::kRunning);
  run_all();
}

TEST_F(SchedulerFixture, CpuTimeAccountedPerThread) {
  auto& thread = scheduler.spawn("t0", PriorityClass::kNormal,
                                 compute_program(1e9));
  run_all();
  // Alone on a core: cpu time equals wall time.
  EXPECT_NEAR(static_cast<double>(thread.cpu_time()),
              static_cast<double>(thread.finish_time() -
                                  thread.start_time()),
              1e3);
}

// ---- scheduler: blocking steps ---------------------------------------------------

TEST_F(SchedulerFixture, DiskStepBlocksAndResumes) {
  ProgramBuilder builder;
  builder.compute(1e6, hw::mixes::io_bound());
  builder.disk_read(10 * 1024 * 1024);
  builder.compute(1e6, hw::mixes::io_bound());
  auto& thread = scheduler.spawn("io", PriorityClass::kNormal,
                                 builder.build());
  run_all();
  EXPECT_TRUE(thread.done());
  // Blocked time (disk) is wall but not CPU.
  EXPECT_LT(thread.cpu_time(),
            thread.finish_time() - thread.start_time());
  EXPECT_EQ(machine.disk().completed_ops(), 1u);
}

TEST_F(SchedulerFixture, NetStepUsesNic) {
  ProgramBuilder builder;
  builder.net(1000 * 1000);
  auto& thread = scheduler.spawn("net", PriorityClass::kNormal,
                                 builder.build());
  run_all();
  EXPECT_TRUE(thread.done());
  EXPECT_EQ(machine.nic().bytes_transferred(), 1000u * 1000u);
  // 1 MB at ~12.4 MB/s: roughly 80 ms.
  EXPECT_NEAR(sim::to_seconds(thread.finish_time()), 0.081, 0.01);
}

TEST_F(SchedulerFixture, SleepStepDelaysCompletion) {
  ProgramBuilder builder;
  builder.sleep(sim::from_seconds(0.5));
  auto& thread = scheduler.spawn("sleeper", PriorityClass::kNormal,
                                 builder.build());
  run_all();
  EXPECT_NEAR(sim::to_seconds(thread.finish_time()), 0.5, 1e-9);
  EXPECT_EQ(thread.cpu_time(), 0);
}

TEST_F(SchedulerFixture, BlockedThreadFreesCoreForOthers) {
  ProgramBuilder io_builder;
  io_builder.disk_read(50 * 1024 * 1024);  // long read
  scheduler.spawn("io", PriorityClass::kNormal, io_builder.build());

  auto& c0 = scheduler.spawn("c0", PriorityClass::kNormal,
                             compute_program(1e8));
  auto& c1 = scheduler.spawn("c1", PriorityClass::kNormal,
                             compute_program(1e8));
  simulator.step();
  // The I/O thread blocked immediately, so both compute threads run.
  EXPECT_EQ(c0.state(), ThreadState::kRunning);
  EXPECT_EQ(c1.state(), ThreadState::kRunning);
  run_all();
}

// ---- scheduler: callbacks & misc --------------------------------------------------

TEST_F(SchedulerFixture, OnDoneFires) {
  bool fired = false;
  auto& thread = scheduler.spawn("t0", PriorityClass::kNormal,
                                 compute_program(1e6));
  thread.set_on_done([&](HostThread& t) {
    fired = true;
    EXPECT_EQ(&t, &thread);
  });
  run_all();
  EXPECT_TRUE(fired);
}

TEST_F(SchedulerFixture, OnDoneMaySpawnNewThread) {
  auto& first = scheduler.spawn("first", PriorityClass::kNormal,
                                compute_program(1e6));
  HostThread* second = nullptr;
  first.set_on_done([&](HostThread&) {
    second = &scheduler.spawn("second", PriorityClass::kNormal,
                              compute_program(1e6));
  });
  run_all();
  ASSERT_NE(second, nullptr);
  EXPECT_TRUE(second->done());
}

TEST_F(SchedulerFixture, EmptyProgramFinishesImmediately) {
  ProgramBuilder builder;
  auto& thread = scheduler.spawn("noop", PriorityClass::kNormal,
                                 builder.build());
  EXPECT_TRUE(thread.done());
}

TEST_F(SchedulerFixture, ZeroInstructionComputeStepsAreSkipped) {
  ProgramBuilder builder;
  builder.compute(0.0, hw::mixes::idle_spin());
  builder.compute(1e6, hw::mixes::idle_spin());
  auto& thread = scheduler.spawn("t", PriorityClass::kNormal,
                                 builder.build());
  run_all();
  EXPECT_TRUE(thread.done());
  EXPECT_NEAR(thread.instructions_done(), 1e6, 1.0);
}

TEST_F(SchedulerFixture, VmOwnedFlagPublishedToMachine) {
  scheduler.spawn("vcpu", PriorityClass::kIdle,
                  compute_program(1e9, hw::mixes::einstein()),
                  /*vm_owned=*/true);
  simulator.step();
  bool vm_core_seen = false;
  for (int core = 0; core < machine.core_count(); ++core) {
    if (machine.occupancy(core).busy && machine.occupancy(core).vm_owned) {
      vm_core_seen = true;
    }
  }
  EXPECT_TRUE(vm_core_seen);
}

TEST_F(SchedulerFixture, BadQuantumRejected) {
  SchedulerConfig config;
  config.quantum = 0;
  EXPECT_THROW(PriorityScheduler(machine, config), util::ConfigError);
}

}  // namespace
}  // namespace vgrid::os
