// Tests for the analysis additions: Mann-Whitney U, WorkloadMeter, and
// the trace timeline report.

#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include <filesystem>
#include <fstream>

#include "report/chrome_trace.hpp"
#include "report/timeline.hpp"
#include "stats/mann_whitney.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workloads/matrix.hpp"
#include "workloads/meter.hpp"

namespace vgrid {
namespace {

// ---- Mann-Whitney U ---------------------------------------------------------

TEST(MannWhitney, IdenticalSamplesNotSignificant) {
  const std::vector<double> a{1, 2, 3, 4, 5, 6, 7, 8};
  const auto result = stats::mann_whitney_u(a, a);
  EXPECT_GT(result.p_value_two_sided, 0.9);
  EXPECT_NEAR(result.effect_size, 0.0, 1e-9);
}

TEST(MannWhitney, DisjointSamplesHighlySignificant) {
  std::vector<double> low, high;
  for (int i = 0; i < 30; ++i) {
    low.push_back(1.0 + i * 0.01);
    high.push_back(10.0 + i * 0.01);
  }
  const auto result = stats::mann_whitney_u(low, high);
  EXPECT_LT(result.p_value_two_sided, 1e-6);
  EXPECT_NEAR(result.effect_size, -1.0, 1e-9);  // first sample all smaller
  EXPECT_TRUE(stats::significantly_different(low, high));
}

TEST(MannWhitney, DetectsModerateShiftAtN50) {
  // The paper's methodology: 50 reps per environment. A 10% shift with 3%
  // noise must be detected.
  util::Xoshiro256 rng(11);
  std::vector<double> native, guest;
  for (int i = 0; i < 50; ++i) {
    native.push_back(rng.normal(1.00, 0.03));
    guest.push_back(rng.normal(1.10, 0.03));
  }
  EXPECT_TRUE(stats::significantly_different(native, guest, 0.01));
}

TEST(MannWhitney, NoFalsePositiveOnSameDistribution) {
  util::Xoshiro256 rng(13);
  int positives = 0;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> a, b;
    for (int i = 0; i < 50; ++i) {
      a.push_back(rng.normal(5.0, 1.0));
      b.push_back(rng.normal(5.0, 1.0));
    }
    if (stats::significantly_different(a, b, 0.05)) ++positives;
  }
  EXPECT_LT(positives, 15);  // ~5% expected
}

TEST(MannWhitney, HandlesTies) {
  const std::vector<double> a{1, 1, 1, 2, 2};
  const std::vector<double> b{1, 2, 2, 2, 3};
  const auto result = stats::mann_whitney_u(a, b);
  EXPECT_GE(result.p_value_two_sided, 0.0);
  EXPECT_LE(result.p_value_two_sided, 1.0);
}

TEST(MannWhitney, RejectsEmptySamples) {
  const std::vector<double> a{1.0};
  EXPECT_THROW(stats::mann_whitney_u(a, {}), util::ConfigError);
  EXPECT_THROW(stats::mann_whitney_u({}, a), util::ConfigError);
}

// ---- WorkloadMeter ----------------------------------------------------------

TEST(Meter, ProfilesCpuBoundWorkload) {
  workloads::MatrixBenchmark bench(128);
  const auto profile = workloads::meter(bench);
  EXPECT_EQ(profile.workload, "matrix-128x128");
  EXPECT_GT(profile.native_wall_seconds, 0.0);
  EXPECT_GT(profile.implied_native_ips, 0.0);
  // CPU-bound: utilization near 1.
  EXPECT_GT(profile.cpu_utilization, 0.5);
  EXPECT_FALSE(workloads::describe(profile).empty());
}

TEST(Meter, SimBudgetMatchesWorkload) {
  workloads::MatrixBenchmark bench(64);
  const auto profile = workloads::meter(bench);
  EXPECT_DOUBLE_EQ(profile.simulated_instructions,
                   bench.simulated_instructions());
}

// ---- TimelineReport -----------------------------------------------------------

TEST(Timeline, SummarizesSchedulerTrace) {
  core::Testbed testbed;
  testbed.tracer().enable(true);
  os::ProgramBuilder a;
  a.compute(1e8, hw::mixes::idle_spin());
  a.disk_read(1024 * 1024);
  a.compute(1e8, hw::mixes::idle_spin());
  auto& thread = testbed.scheduler().spawn(
      "worker", os::PriorityClass::kNormal, a.build());
  (void)testbed.run_until_done(thread);

  const report::TimelineReport timeline(testbed.tracer().records());
  ASSERT_TRUE(timeline.activities().count("worker"));
  const auto& activity = timeline.activities().at("worker");
  EXPECT_GE(activity.schedules, 2u);  // re-placed after the disk block
  EXPECT_EQ(activity.blocks, 1u);
  EXPECT_EQ(activity.wakes, 1u);
  EXPECT_EQ(timeline.disk_ops(), 1u);
  EXPECT_NE(timeline.ascii().find("worker"), std::string::npos);
}

TEST(Timeline, StripChartRendersRows) {
  core::Testbed testbed;
  testbed.tracer().enable(true);
  for (int i = 0; i < 3; ++i) {
    os::ProgramBuilder builder;
    builder.compute(5e8, hw::mixes::idle_spin());
    testbed.scheduler().spawn("t" + std::to_string(i),
                              os::PriorityClass::kNormal, builder.build());
  }
  testbed.run_all();
  const report::TimelineReport timeline(testbed.tracer().records());
  const std::string chart = timeline.strip_chart(32);
  EXPECT_NE(chart.find("t0"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(Timeline, EmptyTraceIsHarmless) {
  const report::TimelineReport timeline({});
  EXPECT_TRUE(timeline.activities().empty());
  EXPECT_TRUE(timeline.strip_chart().empty());
}

// ---- Chrome trace export -------------------------------------------------------

TEST(ChromeTrace, EmitsWellFormedJsonArray) {
  std::vector<sim::TraceRecord> records;
  records.push_back({1000, sim::TraceKind::kSchedule, "worker", "core 0"});
  records.push_back({5000, sim::TraceKind::kPreempt, "worker", ""});
  records.push_back({6000, sim::TraceKind::kDiskOp, "disk",
                     "read 4096 bytes"});
  const std::string json = report::chrome_trace_json(records);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  // A duration event of 4 us for the worker slice.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":4.000"), std::string::npos);
  // An instant event for the disk op.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(ChromeTrace, EscapesHostileSubjects) {
  std::vector<sim::TraceRecord> records;
  records.push_back({1, sim::TraceKind::kCustom, "a\"b\\c\nd", "x\"y"});
  const std::string json = report::chrome_trace_json(records);
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd"), std::string::npos);
  EXPECT_EQ(json.find("a\"b"), std::string::npos);
}

TEST(ChromeTrace, FullSchedulerTraceExports) {
  core::Testbed testbed;
  testbed.tracer().enable(true);
  os::ProgramBuilder builder;
  builder.compute(2e8, hw::mixes::idle_spin());
  builder.disk_read(1024 * 1024);
  auto& thread = testbed.scheduler().spawn(
      "worker", os::PriorityClass::kNormal, builder.build());
  (void)testbed.run_until_done(thread);
  const auto path = std::filesystem::temp_directory_path() /
                    "vgrid-test-trace.json";
  report::write_chrome_trace(path.string(),
                             testbed.tracer().records());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("worker"), std::string::npos);
  std::filesystem::remove(path);
}

// ---- machine presets -------------------------------------------------------------

TEST(MachinePresets, SpanTheEraSensibly) {
  const auto paper = hw::machines::core2duo_e6600();
  const auto old = hw::machines::pentium4_class();
  const auto next = hw::machines::quadcore_class();
  EXPECT_EQ(paper.chip.cores, 2);
  EXPECT_EQ(old.chip.cores, 1);
  EXPECT_EQ(next.chip.cores, 4);
  EXPECT_LT(old.ram_bytes, paper.ram_bytes);
  EXPECT_GT(next.ram_bytes, paper.ram_bytes);
  // Despite the higher clock, the P4 is slower per-thread on every mix.
  const hw::CpuChip p4(old.chip);
  const hw::CpuChip c2d(paper.chip);
  for (const auto& mix : {hw::mixes::sevenzip(), hw::mixes::matrix()}) {
    EXPECT_LT(p4.native_ips(mix), c2d.native_ips(mix));
  }
}

TEST(MachinePresets, P4CannotHostTheGuest) {
  // 512 MB minus a realistic host working set cannot commit 300 MB twice;
  // a single VM fits, a second must fail.
  sim::Simulator simulator;
  hw::Machine machine(simulator, hw::machines::pentium4_class());
  EXPECT_TRUE(machine.commit_ram(300 * util::MiB));
  EXPECT_FALSE(machine.commit_ram(300 * util::MiB));
}

}  // namespace
}  // namespace vgrid
