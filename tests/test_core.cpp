// Tests for the evaluation framework: testbed, repetition runner, scaled
// programs, guest-performance and host-impact experiments.

#include <gtest/gtest.h>

#include "core/guest_perf.hpp"
#include "core/host_impact.hpp"
#include "core/runner.hpp"
#include "core/scaled_program.hpp"
#include "core/testbed.hpp"
#include "util/error.hpp"
#include "vmm/profile.hpp"
#include "workloads/iobench.hpp"
#include "workloads/sevenzip/bench7z.hpp"

namespace vgrid::core {
namespace {

RunnerConfig fast_runner() {
  RunnerConfig config;
  config.repetitions = 3;
  config.input_jitter = 0.0;
  return config;
}

// ---- testbed ---------------------------------------------------------------------

TEST(Testbed, PaperMachineConfig) {
  const hw::MachineConfig config = paper_machine_config();
  EXPECT_EQ(config.chip.cores, 2);
  EXPECT_DOUBLE_EQ(config.chip.frequency_hz, 2.4e9);
  EXPECT_EQ(config.ram_bytes, 1 * util::GiB);
}

TEST(Testbed, RunUntilDoneReturnsWallSeconds) {
  Testbed testbed;
  os::ProgramBuilder builder;
  builder.compute(2.4e9, hw::mixes::idle_spin());
  auto& thread = testbed.scheduler().spawn(
      "t", os::PriorityClass::kNormal, builder.build());
  const double seconds = testbed.run_until_done(thread);
  EXPECT_GT(seconds, 0.0);
  EXPECT_LT(seconds, 10.0);
}

TEST(Testbed, DeadlockDetected) {
  Testbed testbed;
  os::ProgramBuilder builder;
  builder.compute(1e9, hw::mixes::idle_spin());
  auto& normal = testbed.scheduler().spawn(
      "a", os::PriorityClass::kNormal, builder.build());
  (void)testbed.run_until_done(normal);
  // A second query about a thread that can never progress (no events):
  os::ProgramBuilder never;
  // spawn an idle thread that finishes fine -- then ask about a fresh
  // Testbed-less scenario is impossible; instead check the error path by
  // draining events and asking again.
  auto& done_thread = testbed.scheduler().spawn(
      "b", os::PriorityClass::kNormal, never.build());
  EXPECT_NO_THROW((void)testbed.run_until_done(done_thread));
}

// ---- ScaledProgram ------------------------------------------------------------------

TEST(ScaledProgram, MultipliesComputeInstructions) {
  os::ProgramBuilder builder;
  builder.compute(1000, hw::mixes::idle_spin());
  ScaledProgram program(builder.build(), 2.5);
  const os::Step step = program.next();
  const auto* compute = std::get_if<os::ComputeStep>(&step);
  ASSERT_NE(compute, nullptr);
  EXPECT_DOUBLE_EQ(compute->instructions, 2500.0);
}

TEST(ScaledProgram, LeavesOtherStepsAlone) {
  os::ProgramBuilder builder;
  builder.disk_read(4096);
  ScaledProgram program(builder.build(), 3.0);
  const os::Step step = program.next();
  const auto* disk = std::get_if<os::DiskStep>(&step);
  ASSERT_NE(disk, nullptr);
  EXPECT_EQ(disk->bytes, 4096u);
}

TEST(ScaledProgram, RejectsNonPositiveScale) {
  os::ProgramBuilder builder;
  EXPECT_THROW(ScaledProgram(builder.build(), 0.0), util::ConfigError);
}

// ---- Runner ------------------------------------------------------------------------

TEST(Runner, RunsRequestedRepetitions) {
  Runner runner(fast_runner());
  int calls = 0;
  const stats::Summary summary = runner.measure([&](double) {
    ++calls;
    return 1.0;
  });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(summary.count, 3u);
  EXPECT_DOUBLE_EQ(summary.mean, 1.0);
}

TEST(Runner, JitterVariesScale) {
  RunnerConfig config;
  config.repetitions = 20;
  config.input_jitter = 0.05;
  Runner runner(config);
  std::vector<double> scales;
  (void)runner.measure([&](double scale) {
    scales.push_back(scale);
    return scale;
  });
  const stats::Summary summary = stats::summarize(scales);
  EXPECT_GT(summary.stddev, 0.0);
  EXPECT_NEAR(summary.mean, 1.0, 0.05);
}

TEST(Runner, WarmupRunsAreDiscarded) {
  RunnerConfig config;
  config.repetitions = 2;
  config.warmup = 3;
  Runner runner(config);
  int calls = 0;
  const stats::Summary summary = runner.measure([&](double) {
    ++calls;
    return static_cast<double>(calls);
  });
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(summary.count, 2u);
}

TEST(Runner, RejectsZeroRepetitions) {
  RunnerConfig config;
  config.repetitions = 0;
  EXPECT_THROW(Runner{config}, util::ConfigError);
}

// ---- GuestPerfExperiment --------------------------------------------------------------

TEST(GuestPerf, NativeFasterThanAnyVm) {
  GuestPerfExperiment experiment(
      [] {
        workloads::Bench7zConfig config;
        return workloads::SevenZipBench(config).make_program();
      },
      fast_runner());
  const stats::Summary native = experiment.measure_native();
  for (const auto& profile : vmm::profiles::all()) {
    const stats::Summary guest = experiment.measure_under(profile);
    EXPECT_GT(guest.mean, native.mean) << profile.name;
  }
}

TEST(GuestPerf, SlowdownOrderingMatchesPaperFig1) {
  GuestPerfExperiment experiment(
      [] {
        return workloads::SevenZipBench(workloads::Bench7zConfig{})
            .make_program();
      },
      fast_runner());
  const double vmplayer =
      experiment.slowdown(vmm::profiles::vmplayer());
  const double vbox = experiment.slowdown(vmm::profiles::virtualbox());
  const double vpc = experiment.slowdown(vmm::profiles::virtualpc());
  const double qemu = experiment.slowdown(vmm::profiles::qemu());
  EXPECT_LT(vmplayer, vbox);
  EXPECT_LT(vbox, vpc);
  EXPECT_LT(vpc, qemu);
  EXPECT_GT(qemu, 2.0);  // "more than twice slower"
}

TEST(GuestPerf, IoBenchOrderingFollowsDiskPathMultipliers) {
  GuestPerfExperiment experiment(
      [] { return workloads::IoBench().make_program(); }, fast_runner());
  double previous = 1.0;
  // Profiles sorted by disk path multiplier must yield sorted slowdowns.
  for (const char* name : {"vmplayer", "virtualbox", "virtualpc", "qemu"}) {
    const double slowdown =
        experiment.slowdown(*vmm::profiles::by_name(name));
    EXPECT_GT(slowdown, previous) << name;
    previous = slowdown;
  }
}

TEST(GuestPerf, ParavirtBeatsEveryPaperEnvironment) {
  GuestPerfExperiment experiment(
      [] {
        return workloads::SevenZipBench(workloads::Bench7zConfig{})
            .make_program();
      },
      fast_runner());
  const double paravirt =
      experiment.slowdown(vmm::profiles::paravirt());
  for (const auto& profile : vmm::profiles::all()) {
    EXPECT_LT(paravirt, experiment.slowdown(profile)) << profile.name;
  }
  EXPECT_LT(paravirt, 1.10);  // Xen-class: under 10%
}

TEST(GuestPerf, NativeMeasurementIsCached) {
  int factory_calls = 0;
  GuestPerfExperiment experiment(
      [&factory_calls] {
        ++factory_calls;
        os::ProgramBuilder builder;
        builder.compute(1e8, hw::mixes::idle_spin());
        return builder.build();
      },
      fast_runner());
  (void)experiment.measure_native();
  const int after_first = factory_calls;
  (void)experiment.measure_native();
  EXPECT_EQ(factory_calls, after_first);
}

// ---- HostImpactExperiment ---------------------------------------------------------------

TEST(HostImpact, NoVmDualThreadLandsNearPaper180) {
  HostImpactConfig config;
  config.runner = fast_runner();
  HostImpactExperiment experiment(config);
  const SevenZipHostMetrics metrics = experiment.run_7z(2, nullptr);
  EXPECT_NEAR(metrics.cpu_percent, 180.0, 8.0);
}

TEST(HostImpact, SingleThreadUnaffectedByVm) {
  HostImpactConfig config;
  config.runner = fast_runner();
  HostImpactExperiment experiment(config);
  for (const auto& profile : vmm::profiles::all()) {
    const SevenZipHostMetrics metrics = experiment.run_7z(1, &profile);
    EXPECT_GT(metrics.cpu_percent, 95.0) << profile.name;
  }
}

TEST(HostImpact, VmPlayerCostsMostOnDualThread) {
  HostImpactConfig config;
  config.runner = fast_runner();
  HostImpactExperiment experiment(config);
  const vmm::VmmProfile vmplayer_profile = vmm::profiles::vmplayer();
  const auto vmplayer = experiment.run_7z(2, &vmplayer_profile);
  for (const char* other : {"qemu", "virtualbox", "virtualpc"}) {
    const vmm::VmmProfile profile = *vmm::profiles::by_name(other);
    const auto metrics = experiment.run_7z(2, &profile);
    EXPECT_LT(vmplayer.cpu_percent, metrics.cpu_percent) << other;
  }
}

TEST(HostImpact, NBenchOverheadUnderFivePercent) {
  HostImpactConfig config;
  config.runner = fast_runner();
  HostImpactExperiment experiment(config);
  for (const auto& profile : vmm::profiles::all()) {
    const double overhead = experiment.nbench_overhead_percent(
        workloads::nbench::Index::kMem, profile);
    EXPECT_GT(overhead, 0.0) << profile.name;
    EXPECT_LT(overhead, 6.0) << profile.name;
  }
}

TEST(HostImpact, IndexOverheadOrderingMemIntFp) {
  HostImpactConfig config;
  config.runner = fast_runner();
  HostImpactExperiment experiment(config);
  const auto profile = vmm::profiles::vmplayer();
  const double mem = experiment.nbench_overhead_percent(
      workloads::nbench::Index::kMem, profile);
  const double integer = experiment.nbench_overhead_percent(
      workloads::nbench::Index::kInt, profile);
  const double fp = experiment.nbench_overhead_percent(
      workloads::nbench::Index::kFp, profile);
  EXPECT_GT(mem, integer);
  EXPECT_GT(integer, fp);
  EXPECT_LT(fp, 1.0);  // "practically no overhead"
}

TEST(HostImpact, PriorityBarelyMatters) {
  // Paper §4.2.2: normal vs idle priority yield similar host overhead.
  for (const os::PriorityClass priority :
       {os::PriorityClass::kNormal, os::PriorityClass::kIdle}) {
    HostImpactConfig config;
    config.vm_priority = priority;
    config.runner = fast_runner();
    HostImpactExperiment experiment(config);
    const double overhead = experiment.nbench_overhead_percent(
        workloads::nbench::Index::kInt, vmm::profiles::virtualbox());
    EXPECT_LT(overhead, 4.0);
  }
}

TEST(HostImpact, RejectsZeroThreads) {
  HostImpactExperiment experiment;
  EXPECT_THROW(experiment.run_7z(0, nullptr), util::ConfigError);
}

}  // namespace
}  // namespace vgrid::core
