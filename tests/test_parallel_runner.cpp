// Property suite for the parallel experiment engine (core::TaskPool /
// core::ParallelRunner / the cross-testbed figure scheduler): for every
// figure workload and every worker count, a parallel run must be
// *byte-identical* to the serial one — numeric rows compared as hexfloats
// and the determinism-audit event-trace capture compared verbatim — plus
// the seed-partitioning primitives (util::Rng::fork) and the
// torn-down-mid-run cancellation path.

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiments.hpp"
#include "core/parallel_runner.hpp"
#include "core/runner.hpp"
#include "core/task_pool.hpp"
#include "core/testbed.hpp"
#include "report/chrome_trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace vgrid {
namespace {

// ---- seed partitioning ------------------------------------------------------

TEST(RngFork, StreamsAreDistinctAndStable) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t stream = 0; stream < 256; ++stream) {
    const std::uint64_t forked = util::Rng::fork_seed(7777, stream);
    EXPECT_TRUE(seen.insert(forked).second)
        << "stream " << stream << " collides";
    // Pure function: same (seed, stream) -> same child seed, always.
    EXPECT_EQ(forked, util::Rng::fork_seed(7777, stream));
  }
  EXPECT_NE(util::Rng::fork_seed(1, 0), util::Rng::fork_seed(2, 0));
}

TEST(RngFork, ForkedGeneratorsMatchForkedSeeds) {
  util::Rng by_fork = util::Rng::fork(42, 3);
  util::Rng by_seed(util::Rng::fork_seed(42, 3));
  for (int i = 0; i < 16; ++i) EXPECT_EQ(by_fork.next(), by_seed.next());
}

TEST(RepetitionScale, PureFunctionOfConfigCallAndIndex) {
  core::RunnerConfig config;
  for (int i = 0; i < 64; ++i) {
    const double scale = core::repetition_scale(config, 0, i);
    EXPECT_GT(scale, 0.0);
    EXPECT_EQ(scale, core::repetition_scale(config, 0, i));
  }
  // Distinct calls draw from distinct forked streams (the Runner::measure
  // correlated-jitter fix): the sequences must not repeat.
  bool any_differs = false;
  for (int i = 0; i < 16; ++i) {
    if (core::repetition_scale(config, 0, i) !=
        core::repetition_scale(config, 1, i)) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(RepetitionScale, SuccessiveMeasureCallsAreDecorrelated) {
  // A Runner's two measure() calls must see different jitter sequences;
  // they used to re-seed from config_.seed each call and repeat the exact
  // same scales.
  core::RunnerConfig config;
  config.repetitions = 8;
  core::Runner runner(config);
  std::vector<double> first, second;
  runner.measure([&](double scale) {
    first.push_back(scale);
    return scale;
  });
  runner.measure([&](double scale) {
    second.push_back(scale);
    return scale;
  });
  ASSERT_EQ(first.size(), second.size());
  EXPECT_NE(first, second);
}

// ---- ParallelRunner == Runner ----------------------------------------------

std::string summary_hex(const stats::Summary& summary) {
  return util::format("n=%zu mean=%a sd=%a min=%a max=%a med=%a p25=%a "
                      "p75=%a ci=%a",
                      summary.count, summary.mean, summary.stddev,
                      summary.min, summary.max, summary.median, summary.p25,
                      summary.p75, summary.ci95_half_width);
}

TEST(ParallelRunner, ByteIdenticalToSerialRunnerForEveryJobsValue) {
  core::RunnerConfig config;
  config.repetitions = 33;
  config.warmup = 2;
  config.tukey_outlier_filter = true;
  const auto fn = [](double scale) { return 3.5 * scale * scale + 0.25; };
  core::Runner serial(config);
  const std::string expected = summary_hex(serial.measure(fn));
  for (const int jobs : {1, 2, 8, 0}) {
    core::RunnerConfig parallel_config = config;
    parallel_config.jobs = jobs;
    core::ParallelRunner parallel(parallel_config);
    EXPECT_EQ(summary_hex(parallel.measure(fn)), expected)
        << "--jobs " << jobs;
  }
}

TEST(ParallelRunner, CallCounterStaysInLockstepWithSerialRunner) {
  // Three successive measure() calls advance the fork stream identically
  // on both harnesses.
  core::RunnerConfig config;
  config.repetitions = 9;
  core::Runner serial(config);
  config.jobs = 4;
  core::ParallelRunner parallel(config);
  const auto fn = [](double scale) { return 1.0 / scale; };
  for (int call = 0; call < 3; ++call) {
    EXPECT_EQ(summary_hex(parallel.measure(fn)),
              summary_hex(serial.measure(fn)))
        << "call " << call;
  }
}

TEST(ParallelRunner, RejectsBadConfig) {
  core::RunnerConfig config;
  config.repetitions = 0;
  EXPECT_THROW(core::ParallelRunner{config}, util::ConfigError);
}

// ---- every figure, every jobs value -----------------------------------------

struct FigureCase {
  const char* id;
  core::FigureResult (*fn)(core::RunnerConfig);
};

constexpr FigureCase kFigures[] = {
    {"fig1", core::fig1_7z},            {"fig2", core::fig2_matrix},
    {"fig3", core::fig3_iobench},       {"fig4", core::fig4_netbench},
    {"fig5", core::fig5_mem_index},     {"fig6", core::fig6_int_fp_index},
    {"fig7", core::fig7_cpu_available}, {"fig8", core::fig8_mips_ratio},
};

/// Rows as hexfloats plus the full testbed event-trace capture — the same
/// digest `vgrid determinism-audit` byte-diffs.
std::string figure_digest(const FigureCase& figure,
                          const core::RunnerConfig& runner) {
  std::string stream;
  core::set_trace_capture(&stream);
  const core::FigureResult result = figure.fn(runner);
  core::set_trace_capture(nullptr);
  for (const auto& row : result.rows) {
    stream += util::format("%s=%a\n", row.label.c_str(), row.measured);
  }
  return stream;
}

class FigureJobsProperty : public ::testing::TestWithParam<FigureCase> {};

TEST_P(FigureJobsProperty, ByteIdenticalAcrossWorkerCounts) {
  const FigureCase& figure = GetParam();
  core::RunnerConfig runner = core::figure_runner_config();
  runner.repetitions = 2;
  runner.jobs = 1;
  const std::string serial = figure_digest(figure, runner);
  ASSERT_FALSE(serial.empty());
  EXPECT_NE(serial.find("=== testbed trace ==="), std::string::npos)
      << "trace capture missing — the digest would not catch event skew";
  for (const int jobs : {2, 8, 0}) {
    runner.jobs = jobs;
    EXPECT_EQ(figure_digest(figure, runner), serial)
        << figure.id << " --jobs " << jobs;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFigures, FigureJobsProperty,
                         ::testing::ValuesIn(kFigures),
                         [](const auto& param_info) {
                           return std::string(param_info.param.id);
                         });

// ---- cancellation -----------------------------------------------------------

TEST(ParallelRunner, CancellationMidRunThrowsAndLeavesRunnerUsable) {
  core::RunnerConfig config;
  config.repetitions = 64;
  config.jobs = 2;
  core::ParallelRunner runner(config);
  std::atomic<bool> cancel{false};
  std::atomic<int> executed{0};
  EXPECT_THROW(runner.measure(
                   [&](double scale) {
                     if (executed.fetch_add(1) >= 5) cancel.store(true);
                     return scale;
                   },
                   &cancel),
               util::SimulationError);
  // Torn down, not wedged: the pool joined its workers and the runner
  // accepts the next measure() as if the cancelled call never happened...
  const stats::Summary summary = runner.measure([](double s) { return s; });
  EXPECT_EQ(summary.count, 64u);
  // ...except the call counter advanced, as for any completed call.
  core::RunnerConfig serial_config = config;
  serial_config.jobs = 1;
  core::Runner reference(serial_config);
  reference.measure([](double s) { return s; });
  reference.measure([](double s) { return s; });
  const stats::Summary third = reference.measure([](double s) { return s; });
  EXPECT_EQ(summary_hex(runner.measure([](double s) { return s; })),
            summary_hex(third));
}

TEST(TaskPool, CancelledRunAppendsNothingToTraceCapture) {
  std::string stream;
  core::set_trace_capture(&stream);
  core::TaskPool pool(2);
  std::atomic<bool> cancel{true};  // torn down before any task starts
  EXPECT_THROW(pool.run(16,
                        [](std::size_t) {
                          core::trace_capture()->append("leaked\n");
                        },
                        &cancel),
               util::SimulationError);
  core::set_trace_capture(nullptr);
  EXPECT_TRUE(stream.empty()) << stream;
}

TEST(TaskPool, TaskExceptionPropagatesLowestIndexDeterministically) {
  core::TaskPool pool(4);
  for (int attempt = 0; attempt < 4; ++attempt) {
    try {
      pool.run(32, [](std::size_t index) {
        if (index % 7 == 3) {  // 3, 10, 17, 24, 31 all throw
          throw util::SimulationError(util::format("task %zu", index));
        }
      });
      FAIL() << "expected a SimulationError";
    } catch (const util::SimulationError& error) {
      EXPECT_STREQ(error.what(), "task 3");
    }
  }
}

// ---- worker-span observability ----------------------------------------------

TEST(TaskPool, PublishesOneSpanPerTaskToTopLevelSink) {
  std::vector<report::WorkerSpan> spans;
  core::set_worker_span_capture(&spans);
  core::TaskPool pool(2);
  pool.run(12, [](std::size_t) {}, nullptr, "rep");
  core::set_worker_span_capture(nullptr);
  ASSERT_EQ(spans.size(), 12u);
  for (const auto& span : spans) {
    EXPECT_GE(span.worker, 0);
    EXPECT_LT(span.worker, 2);
    EXPECT_LE(span.start_ns, span.end_ns);
    EXPECT_EQ(span.label.rfind("rep", 0), 0u) << span.label;
  }
  const std::string json = report::worker_trace_json(spans);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("experiment-pool"), std::string::npos);
}

}  // namespace
}  // namespace vgrid
