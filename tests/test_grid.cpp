// Tests for the mini-BOINC layer: wire protocol, quorum validation, and
// end-to-end server/client flows over real loopback TCP.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "grid/client.hpp"
#include "grid/messages.hpp"
#include "obs/registry.hpp"
#include "grid/server.hpp"
#include "grid/server_logic.hpp"
#include "grid/validator.hpp"
#include "util/error.hpp"

namespace vgrid::grid {
namespace {

// ---- message protocol ----------------------------------------------------------

TEST(Messages, EscapeRoundTripsHostileFields) {
  const std::string hostile = "a|b%c\nd|%7C";
  EXPECT_EQ(unescape_field(escape_field(hostile)), hostile);
}

TEST(Messages, WorkRequestRoundTrip) {
  const WorkRequest request{"client|with|pipes"};
  const auto parsed = parse_work_request(serialize(request));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->client_id, request.client_id);
}

TEST(Messages, WorkResponseRoundTrip) {
  WorkResponse response;
  response.has_work = true;
  response.workunit = Workunit{42, "einstein", "seed=7|x", 3, 2};
  const auto parsed = parse_work_response(serialize(response));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->has_work);
  EXPECT_EQ(parsed->workunit.id, 42u);
  EXPECT_EQ(parsed->workunit.kind, "einstein");
  EXPECT_EQ(parsed->workunit.payload, "seed=7|x");
  EXPECT_EQ(parsed->workunit.replication, 3);
  EXPECT_EQ(parsed->workunit.quorum, 2);
}

TEST(Messages, NoWorkRoundTrip) {
  const auto parsed = parse_work_response(serialize(WorkResponse{}));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->has_work);
}

TEST(Messages, SubmitRoundTrip) {
  SubmitRequest request;
  request.result = Result{7, "alice", "template=3 snr=12.5", 1.25};
  const auto parsed = parse_submit_request(serialize(request));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->result.workunit_id, 7u);
  EXPECT_EQ(parsed->result.client_id, "alice");
  EXPECT_EQ(parsed->result.output, "template=3 snr=12.5");
  EXPECT_NEAR(parsed->result.cpu_seconds, 1.25, 1e-9);
}

TEST(Messages, SubmitResponseRoundTrip) {
  const auto parsed =
      parse_submit_response(serialize(SubmitResponse{true, true}));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->accepted);
  EXPECT_TRUE(parsed->workunit_validated);
}

TEST(Messages, MalformedInputsRejected) {
  EXPECT_FALSE(parse_work_request("WORK").has_value());
  EXPECT_FALSE(parse_work_response("WU|x|y").has_value());
  EXPECT_FALSE(parse_submit_request("SUBMIT|abc|a|b|notanumber").has_value());
  EXPECT_FALSE(parse_submit_response("NACK|1|1").has_value());
  EXPECT_EQ(request_tag("GARBAGE|x"), "");
}

// ---- validator ---------------------------------------------------------------------

TEST(Validator, QuorumOfTwoAgreementValidates) {
  QuorumValidator validator(2, 2);
  EXPECT_FALSE(validator.add(Result{1, "a", "X", 1.0}).has_value());
  const auto canonical = validator.add(Result{1, "b", "X", 1.0});
  ASSERT_TRUE(canonical.has_value());
  EXPECT_EQ(*canonical, "X");
  EXPECT_TRUE(validator.validated());
}

TEST(Validator, MismatchDoesNotValidate) {
  QuorumValidator validator(2, 2);
  EXPECT_FALSE(validator.add(Result{1, "a", "X", 1.0}).has_value());
  EXPECT_FALSE(validator.add(Result{1, "b", "Y", 1.0}).has_value());
  EXPECT_FALSE(validator.validated());
  EXPECT_TRUE(validator.exhausted());
  EXPECT_EQ(validator.additional_instances_needed(), 1);
}

TEST(Validator, TieBrokenByThirdResult) {
  QuorumValidator validator(2, 2);
  (void)validator.add(Result{1, "a", "X", 1.0});
  (void)validator.add(Result{1, "b", "Y", 1.0});
  const auto canonical = validator.add(Result{1, "c", "X", 1.0});
  ASSERT_TRUE(canonical.has_value());
  EXPECT_EQ(*canonical, "X");
}

TEST(Validator, QuorumReportedOnlyOnce) {
  QuorumValidator validator(3, 2);
  (void)validator.add(Result{1, "a", "X", 1.0});
  EXPECT_TRUE(validator.add(Result{1, "b", "X", 1.0}).has_value());
  EXPECT_FALSE(validator.add(Result{1, "c", "X", 1.0}).has_value());
  EXPECT_EQ(validator.results_received(), 3);
}

TEST(Validator, QuorumOfOneIsImmediate) {
  QuorumValidator validator(1, 1);
  EXPECT_TRUE(validator.add(Result{1, "a", "X", 1.0}).has_value());
}

TEST(Validator, RejectsBadConfig) {
  EXPECT_THROW(QuorumValidator(1, 2), util::ConfigError);
  EXPECT_THROW(QuorumValidator(2, 0), util::ConfigError);
}

class ValidatorQuorumSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ValidatorQuorumSweep, AgreementAlwaysValidates) {
  const auto [replication, quorum] = GetParam();
  QuorumValidator validator(replication, quorum);
  bool validated = false;
  for (int i = 0; i < replication; ++i) {
    if (validator.add(Result{1, "c" + std::to_string(i), "same", 1.0})) {
      validated = true;
      EXPECT_EQ(validator.results_received(), quorum);
    }
  }
  EXPECT_TRUE(validated);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ValidatorQuorumSweep,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 2}, std::pair{3, 2},
                      std::pair{5, 3}, std::pair{4, 4}));

// ---- server / client end-to-end ------------------------------------------------------

TEST(ServerClient, SingleWorkunitFlow) {
  ProjectServer server;
  server.add_workunit(Workunit{0, "echo", "hello", 1, 1});

  GridClient client(server.port(), "alice");
  client.register_app("echo", [](const std::string& payload) {
    return "echo:" + payload;
  });
  EXPECT_TRUE(client.run_once());
  EXPECT_EQ(client.stats().workunits_completed, 1u);

  const auto canonical = server.canonical_result(1);
  ASSERT_TRUE(canonical.has_value());
  EXPECT_EQ(*canonical, "echo:hello");
  EXPECT_EQ(server.workunit_state(1), WorkunitState::kValidated);
}

TEST(ServerClient, NoWorkWhenQueueEmpty) {
  ProjectServer server;
  GridClient client(server.port(), "bob");
  client.register_app("echo", [](const std::string&) { return ""; });
  EXPECT_FALSE(client.run_once());
  EXPECT_EQ(client.stats().no_work_replies, 1u);
}

TEST(ServerClient, ReplicationSendsSameWorkunitTwice) {
  ProjectServer server;
  server.add_workunit(Workunit{0, "echo", "p", 2, 2});
  GridClient a(server.port(), "a");
  GridClient b(server.port(), "b");
  for (auto* client : {&a, &b}) {
    client->register_app("echo",
                         [](const std::string& payload) { return payload; });
  }
  EXPECT_TRUE(a.run_once());
  // One of two instances out and one result in: not yet validated.
  EXPECT_NE(server.workunit_state(1), WorkunitState::kValidated);
  EXPECT_TRUE(b.run_once());
  EXPECT_EQ(server.workunit_state(1), WorkunitState::kValidated);
  EXPECT_EQ(server.stats().workunits_sent, 2u);
}

TEST(ServerClient, GeneratorRefillsQueue) {
  ProjectServer server;
  int generated = 0;
  server.set_generator([&generated](Workunit& wu) {
    if (generated >= 3) return false;
    wu.kind = "echo";
    wu.payload = std::to_string(generated++);
    wu.replication = 1;
    wu.quorum = 1;
    return true;
  });
  GridClient client(server.port(), "c");
  client.register_app("echo",
                      [](const std::string& payload) { return payload; });
  client.run(/*max_workunits=*/10, /*idle_limit=*/2);
  EXPECT_EQ(client.stats().workunits_completed, 3u);
  EXPECT_EQ(server.stats().workunits_validated, 3u);
}

TEST(ServerClient, MismatchTriggersExtraInstanceThenValidates) {
  ProjectServer server;
  server.add_workunit(Workunit{0, "vote", "", 2, 2});
  std::atomic<int> calls{0};
  const auto flaky = [&calls](const std::string&) {
    // First client computes a wrong answer; later ones agree.
    return (calls++ == 0) ? std::string("wrong") : std::string("right");
  };
  GridClient a(server.port(), "a");
  GridClient b(server.port(), "b");
  GridClient c(server.port(), "c");
  for (auto* client : {&a, &b, &c}) client->register_app("vote", flaky);

  EXPECT_TRUE(a.run_once());
  EXPECT_TRUE(b.run_once());
  EXPECT_EQ(server.workunit_state(1), WorkunitState::kInProgress);
  EXPECT_TRUE(c.run_once());  // extra instance generated after mismatch
  EXPECT_EQ(server.workunit_state(1), WorkunitState::kValidated);
  EXPECT_EQ(server.canonical_result(1), "right");
}

TEST(ServerClient, CreditAccountsCpuSeconds) {
  ProjectServer server;
  server.add_workunit(Workunit{0, "spin", "", 1, 1});
  GridClient client(server.port(), "worker");
  client.register_app("spin", [](const std::string&) {
    double acc = 0;
    for (int i = 0; i < 5'000'000; ++i) acc += i;
    return acc > 0 ? std::string("done") : std::string("?");
  });
  EXPECT_TRUE(client.run_once());
  EXPECT_GT(server.stats().total_cpu_seconds, 0.0);
  EXPECT_GT(client.stats().cpu_seconds, 0.0);
}

TEST(ServerClient, UnknownKindIsSkipped) {
  ProjectServer server;
  server.add_workunit(Workunit{0, "mystery", "", 1, 1});
  GridClient client(server.port(), "d");
  client.register_app("echo", [](const std::string&) { return ""; });
  EXPECT_FALSE(client.run_once());
  EXPECT_EQ(client.stats().workunits_completed, 0u);
}

TEST(Messages, StatsRoundTrip) {
  const StatsRequest request{"alice|bob"};
  const auto parsed_request = parse_stats_request(serialize(request));
  ASSERT_TRUE(parsed_request.has_value());
  EXPECT_EQ(parsed_request->client_id, "alice|bob");

  const StatsResponse response{12, 345.5, 300.25};
  const auto parsed = parse_stats_response(serialize(response));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->results_accepted, 12u);
  EXPECT_NEAR(parsed->cpu_seconds, 345.5, 1e-6);
  EXPECT_NEAR(parsed->credit, 300.25, 1e-6);
}

TEST(ServerClient, CreditGrantedOnlyToMatchingResults) {
  ProjectServer server;
  server.add_workunit(Workunit{0, "vote", "", 3, 2});
  std::atomic<int> calls{0};
  const auto app = [&calls](const std::string&) {
    // First result disagrees; the next two agree and validate.
    return (calls++ == 0) ? std::string("wrong") : std::string("right");
  };
  GridClient bad(server.port(), "bad");
  GridClient good1(server.port(), "good1");
  GridClient good2(server.port(), "good2");
  for (auto* client : {&bad, &good1, &good2}) {
    client->register_app("vote", app);
  }
  EXPECT_TRUE(bad.run_once());
  EXPECT_TRUE(good1.run_once());
  EXPECT_TRUE(good2.run_once());
  EXPECT_EQ(server.workunit_state(1), WorkunitState::kValidated);

  const StatsResponse bad_account = bad.fetch_account();
  const StatsResponse good_account = good1.fetch_account();
  EXPECT_EQ(bad_account.results_accepted, 1u);
  EXPECT_DOUBLE_EQ(bad_account.credit, 0.0);  // mismatched: no credit
  EXPECT_EQ(good_account.results_accepted, 1u);
  EXPECT_GE(good_account.credit, 0.0);
  EXPECT_DOUBLE_EQ(good_account.credit, good_account.cpu_seconds);
}

TEST(ServerClient, UnknownClientAccountIsEmpty) {
  ProjectServer server;
  GridClient stranger(server.port(), "stranger");
  const StatsResponse account = stranger.fetch_account();
  EXPECT_EQ(account.results_accepted, 0u);
  EXPECT_DOUBLE_EQ(account.credit, 0.0);
}

TEST(ServerClient, DeadlineReissuesLostInstance) {
  ProjectServer server;
  Workunit wu{0, "echo", "payload", 1, 1};
  wu.deadline_seconds = 0.05;
  server.add_workunit(wu);

  // Client A fetches the only instance and vanishes without submitting.
  {
    tcp::Fd conn = tcp::connect_loopback(server.port());
    tcp::write_line(conn.get(), serialize(WorkRequest{"ghost"}));
    std::string line;
    ASSERT_TRUE(tcp::read_line(conn.get(), line));
    const auto work = parse_work_response(line);
    ASSERT_TRUE(work.has_value());
    ASSERT_TRUE(work->has_work);
  }

  // Immediately after, there is nothing to hand out.
  GridClient rescuer(server.port(), "rescuer");
  rescuer.register_app("echo",
                       [](const std::string& payload) { return payload; });
  EXPECT_FALSE(rescuer.run_once());

  // After the deadline passes, the instance is reissued and completes.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(rescuer.run_once());
  EXPECT_EQ(server.workunit_state(1), WorkunitState::kValidated);
  EXPECT_EQ(server.stats().instances_reissued, 1u);
}

TEST(ServerClient, NoDeadlineMeansNoReissue) {
  ProjectServer server;
  server.add_workunit(Workunit{0, "echo", "p", 1, 1});  // deadline 0
  {
    tcp::Fd conn = tcp::connect_loopback(server.port());
    tcp::write_line(conn.get(), serialize(WorkRequest{"ghost"}));
    std::string line;
    ASSERT_TRUE(tcp::read_line(conn.get(), line));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  GridClient client(server.port(), "late");
  client.register_app("echo",
                      [](const std::string& payload) { return payload; });
  EXPECT_FALSE(client.run_once());
  EXPECT_EQ(server.stats().instances_reissued, 0u);
}

TEST(ServerClient, ParallelClientsDrainQueue) {
  ProjectServer server;
  for (int i = 0; i < 8; ++i) {
    server.add_workunit(Workunit{0, "echo", std::to_string(i), 1, 1});
  }
  std::vector<std::thread> pool;
  std::atomic<std::uint64_t> completed{0};
  for (int c = 0; c < 4; ++c) {
    pool.emplace_back([&server, &completed, c] {
      GridClient client(server.port(), "p" + std::to_string(c));
      client.register_app("echo",
                          [](const std::string& payload) { return payload; });
      client.run(/*max_workunits=*/8, /*idle_limit=*/2);
      completed += client.stats().workunits_completed;
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(completed.load(), 8u);
  EXPECT_EQ(server.stats().workunits_validated, 8u);
}

// ---- client metrics wiring ---------------------------------------------------

// Regression: the client's aggregate counter/histogram and the per-client
// labeled histogram must all resolve from the SAME ambient registry at
// construction. They used to resolve in two places (member initializers
// vs. ctor body), which let the series split across registries.
TEST(ServerClient, ClientResolvesAllInstrumentsFromOneRegistry) {
  ProjectServer server;
  obs::Registry registry;
  {
    obs::ScopedRegistry metrics_scope(&registry);
    GridClient client(server.port(), "alice");
  }
  // grid.client.requests + unlabeled and {client=alice} latency histograms.
  EXPECT_EQ(registry.instrument_count(), 3u);
  const std::string snapshot = registry.snapshot_json();
  EXPECT_NE(snapshot.find("grid.client.requests"), std::string::npos);
  EXPECT_NE(snapshot.find("\"client\":\"alice\""), std::string::npos);
}

// A registry installed only AFTER construction must see nothing: the
// handles are resolved once, not per call.
TEST(ServerClient, ClientIgnoresRegistryInstalledAfterConstruction) {
  ProjectServer server;
  server.add_workunit(Workunit{0, "echo", "ping", 1, 1});
  GridClient client(server.port(), "bob");
  client.register_app("echo",
                      [](const std::string& payload) { return payload; });
  obs::Registry late;
  obs::ScopedRegistry metrics_scope(&late);
  EXPECT_TRUE(client.run_once());
  EXPECT_EQ(late.instrument_count(), 0u);
}

// ---- ServerLogic dispatch/reissue ordering regressions -----------------------
// These pin the properties the model checker relies on: issue and reissue
// decisions are protocol rules, not incidentals of map iteration or queue
// position. Each test failed (or was unpinnable) before the ordering fix.

TEST(ServerLogicOrdering, OneResultPerClientPerWorkunit) {
  // BOINC's one_result_per_user_per_wu: a client that already contributed
  // a result never receives another instance of the same workunit — so a
  // single client can never reach quorum (and double credit) alone.
  ServerLogic logic;
  const WorkunitId id = logic.add_workunit(Workunit{0, "echo", "p", 2, 2});
  EXPECT_TRUE(logic.next_work({"solo"}, 0).has_work);
  EXPECT_TRUE(logic.accept_result({Result{id, "solo", "out", 1.0}}).accepted);
  EXPECT_FALSE(logic.next_work({"solo"}, 0).has_work);
  const WorkResponse other = logic.next_work({"other"}, 0);
  ASSERT_TRUE(other.has_work);
  EXPECT_EQ(other.workunit.id, id);
}

TEST(ServerLogicOrdering, BlockedClientStepsOverButOthersStillServed) {
  // The dispatch scan must step over an entry this client is blocked on,
  // not pop it: the blocked client gets the next workunit, and the skipped
  // instance stays available to everyone else.
  ServerLogic logic;
  const WorkunitId first =
      logic.add_workunit(Workunit{0, "echo", "one", 2, 2});
  const WorkunitId second =
      logic.add_workunit(Workunit{0, "echo", "two", 2, 2});
  EXPECT_EQ(logic.next_work({"a"}, 0).workunit.id, first);
  EXPECT_TRUE(logic.accept_result({Result{first, "a", "out", 1.0}}).accepted);
  const WorkResponse for_a = logic.next_work({"a"}, 0);
  ASSERT_TRUE(for_a.has_work);
  EXPECT_EQ(for_a.workunit.id, second);
  const WorkResponse for_b = logic.next_work({"b"}, 0);
  ASSERT_TRUE(for_b.has_work);
  EXPECT_EQ(for_b.workunit.id, first);
}

TEST(ServerLogicOrdering, ValidatedWorkunitIsNeverReissued) {
  // replication 2 / quorum 1: validation lands while an instance is still
  // queued. The leftover must be dropped at dispatch — issuing it would
  // regress the state machine and waste a volunteer.
  ServerLogic logic;
  const WorkunitId id = logic.add_workunit(Workunit{0, "echo", "p", 2, 1});
  EXPECT_TRUE(logic.next_work({"a"}, 0).has_work);
  const SubmitResponse submit =
      logic.accept_result({Result{id, "a", "out", 1.0}});
  EXPECT_TRUE(submit.workunit_validated);
  EXPECT_FALSE(logic.next_work({"b"}, 0).has_work);
  EXPECT_EQ(logic.workunit_state(id), WorkunitState::kValidated);
  EXPECT_FALSE(logic.expire_instance(id));
}

TEST(ServerLogicOrdering, LongestOverdueInstanceIsRecoveredFirst) {
  // Two overdue instances: the lower-id workunit expired at t=6s, the
  // higher-id one at t=1s. Recovery must pick the earliest expiry, not the
  // lowest id the old map scan happened to reach first.
  ServerLogic logic;
  Workunit proto{0, "echo", "one", 1, 1};
  proto.deadline_seconds = 1.0;
  const WorkunitId first = logic.add_workunit(proto);
  proto.payload = "two";
  const WorkunitId second = logic.add_workunit(proto);
  EXPECT_EQ(logic.next_work({"a"}, 5'000'000'000).workunit.id, first);
  EXPECT_EQ(logic.next_work({"b"}, 0).workunit.id, second);
  const WorkResponse rescued = logic.next_work({"c"}, 10'000'000'000);
  ASSERT_TRUE(rescued.has_work);
  EXPECT_EQ(rescued.workunit.id, second);
}

TEST(ServerLogicOrdering, ReissueSkipsClientsThatAlreadyContributed) {
  ServerLogic logic;
  const WorkunitId id = logic.add_workunit(Workunit{0, "echo", "p", 2, 2});
  EXPECT_TRUE(logic.next_work({"a"}, 0).has_work);
  EXPECT_TRUE(logic.next_work({"b"}, 0).has_work);
  EXPECT_TRUE(logic.accept_result({Result{id, "a", "out", 1.0}}).accepted);
  EXPECT_TRUE(logic.expire_instance(id));  // b vanished holding its instance
  // a already returned a result; the reissue must wait for someone else.
  EXPECT_FALSE(logic.next_work({"a"}, 0).has_work);
  const WorkResponse rescued = logic.next_work({"c"}, 0);
  ASSERT_TRUE(rescued.has_work);
  EXPECT_EQ(rescued.workunit.id, id);
}

}  // namespace
}  // namespace vgrid::grid
