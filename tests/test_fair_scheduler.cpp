// Tests for the Linux-CFS-style FairScheduler extension: weighted shares,
// no starvation, and the contrast with the XP-style strict priorities.

#include <gtest/gtest.h>

#include "core/host_impact.hpp"
#include "core/testbed.hpp"
#include "hw/machine.hpp"
#include "os/fair_scheduler.hpp"
#include "os/program.hpp"
#include "sim/simulator.hpp"
#include "vmm/profile.hpp"

namespace vgrid::os {
namespace {

struct FairBed {
  sim::Simulator simulator;
  hw::Machine machine{simulator};
  FairScheduler scheduler{machine};

  void run_all() {
    while (!scheduler.all_done() && simulator.pending_events() > 0) {
      simulator.step();
    }
  }

  void run_for(double seconds) {
    simulator.run_until(sim::from_seconds(seconds));
  }
};

std::unique_ptr<Program> spin(double instructions) {
  ProgramBuilder builder;
  builder.compute(instructions, hw::mixes::idle_spin());
  return builder.build();
}

TEST(FairScheduler, WeightsMatchKernelTable) {
  EXPECT_DOUBLE_EQ(FairScheduler::weight_of(PriorityClass::kNormal),
                   1024.0);
  EXPECT_DOUBLE_EQ(FairScheduler::weight_of(PriorityClass::kIdle), 15.0);
  EXPECT_GT(FairScheduler::weight_of(PriorityClass::kHigh), 1024.0);
}

TEST(FairScheduler, SingleThreadRunsToCompletion) {
  FairBed bed;
  auto& thread = bed.scheduler.spawn("t", PriorityClass::kNormal,
                                     spin(1e9));
  bed.run_all();
  EXPECT_TRUE(thread.done());
  EXPECT_NEAR(thread.instructions_done(), 1e9, 1.0);
}

TEST(FairScheduler, EqualWeightThreadsShareEqually) {
  FairBed bed;
  // Three equal threads on two cores: all must finish within a narrow
  // window of each other.
  std::vector<HostThread*> threads;
  for (int i = 0; i < 3; ++i) {
    threads.push_back(&bed.scheduler.spawn("t" + std::to_string(i),
                                           PriorityClass::kNormal,
                                           spin(2e9)));
  }
  bed.run_all();
  double min_f = 1e18, max_f = 0;
  for (const auto* thread : threads) {
    EXPECT_TRUE(thread->done());
    min_f = std::min(min_f, sim::to_seconds(thread->finish_time()));
    max_f = std::max(max_f, sim::to_seconds(thread->finish_time()));
  }
  EXPECT_LT(max_f / min_f, 1.1);
}

TEST(FairScheduler, IdleThreadIsNotStarvedUnderLoad) {
  // The key difference from XP strict priorities: with both cores loaded
  // by Normal threads, an Idle (nice-19) thread still progresses.
  FairBed bed;
  auto& idle = bed.scheduler.spawn("idle", PriorityClass::kIdle,
                                   spin(1e12));
  bed.scheduler.spawn("n0", PriorityClass::kNormal, spin(1e12));
  bed.scheduler.spawn("n1", PriorityClass::kNormal, spin(1e12));
  bed.run_for(10.0);
  EXPECT_GT(idle.instructions_done(), 0.0);
  // And its share is roughly weight-proportional: 15/1039 of one of two
  // cores' capacity; allow a broad band (quantum granularity).
  const double share =
      static_cast<double>(idle.cpu_time()) / sim::from_seconds(10.0);
  EXPECT_GT(share, 0.005);
  EXPECT_LT(share, 0.10);
}

TEST(FairScheduler, XpStrictPriorityStarvesIdleInSameScenario) {
  // Control: same load under the paper's XP scheduler - the idle thread
  // receives (almost) nothing while both cores are busy.
  sim::Simulator simulator;
  hw::Machine machine{simulator};
  PriorityScheduler scheduler{machine};
  auto& idle = scheduler.spawn("idle", PriorityClass::kIdle, spin(1e12));
  scheduler.spawn("n0", PriorityClass::kNormal, spin(1e12));
  scheduler.spawn("n1", PriorityClass::kNormal, spin(1e12));
  simulator.run_until(sim::from_seconds(10.0));
  EXPECT_LT(static_cast<double>(idle.cpu_time()),
            0.001 * sim::from_seconds(10.0));
}

TEST(FairScheduler, HigherWeightGetsBiggerShare) {
  FairBed bed;
  auto& heavy = bed.scheduler.spawn("heavy", PriorityClass::kHigh,
                                    spin(1e12));
  auto& normal = bed.scheduler.spawn("n0", PriorityClass::kNormal,
                                     spin(1e12));
  bed.scheduler.spawn("n1", PriorityClass::kNormal, spin(1e12));
  bed.run_for(5.0);
  EXPECT_GT(heavy.instructions_done(), normal.instructions_done());
}

TEST(FairScheduler, VruntimeAdvancesInverselyToWeight) {
  FairBed bed;
  auto& idle = bed.scheduler.spawn("idle", PriorityClass::kIdle,
                                   spin(1e12));
  auto& normal = bed.scheduler.spawn("norm", PriorityClass::kNormal,
                                     spin(1e12));
  bed.scheduler.spawn("n1", PriorityClass::kNormal, spin(1e12));
  bed.run_for(2.0);
  // After running, the idle thread's vruntime per CPU-second is ~68x the
  // normal thread's; both stay clustered because selection equalizes
  // vruntime, not CPU time.
  const double idle_vr = bed.scheduler.vruntime(idle);
  const double norm_vr = bed.scheduler.vruntime(normal);
  EXPECT_GT(idle_vr, 0.0);
  EXPECT_GT(norm_vr, 0.0);
  EXPECT_LT(std::abs(idle_vr - norm_vr) / std::max(idle_vr, norm_vr),
            0.35);
  EXPECT_GT(normal.cpu_time(), 10 * idle.cpu_time());
}

TEST(FairScheduler, BlockingAndWakingPreservesFairness) {
  FairBed bed;
  ProgramBuilder io;
  io.compute(5e8, hw::mixes::io_bound());
  io.disk_read(8 * 1024 * 1024);
  io.compute(5e8, hw::mixes::io_bound());
  auto& blocker = bed.scheduler.spawn("io", PriorityClass::kNormal,
                                      io.build());
  bed.scheduler.spawn("cpu", PriorityClass::kNormal, spin(4e9));
  bed.run_all();
  EXPECT_TRUE(blocker.done());
}

// ---- end-to-end: host impact under the Linux host --------------------------------

TEST(LinuxHost, HostGivesUpSlightlyMoreThanXp) {
  core::HostImpactConfig xp_config;
  xp_config.runner.repetitions = 2;
  xp_config.runner.input_jitter = 0.0;
  core::HostImpactConfig cfs_config = xp_config;
  cfs_config.host_os = core::HostOs::kLinuxCfs;

  core::HostImpactExperiment xp(xp_config);
  core::HostImpactExperiment cfs(cfs_config);
  const auto profile = vmm::profiles::virtualbox();
  const auto xp_metrics = xp.run_7z(2, &profile);
  const auto cfs_metrics = cfs.run_7z(2, &profile);
  // CFS grants the vCPU a small share, so the host gets a bit less...
  EXPECT_LT(cfs_metrics.cpu_percent, xp_metrics.cpu_percent);
  // ...but the difference is bounded by the nice-19 weight (~3%).
  EXPECT_GT(cfs_metrics.cpu_percent, xp_metrics.cpu_percent * 0.90);
}

TEST(LinuxHost, TestbedReportsItsFlavour) {
  core::Testbed xp;
  EXPECT_EQ(xp.host_os(), core::HostOs::kWindowsXp);
  core::Testbed cfs(core::paper_machine_config(), {},
                    core::HostOs::kLinuxCfs);
  EXPECT_EQ(cfs.host_os(), core::HostOs::kLinuxCfs);
  EXPECT_STREQ(to_string(core::HostOs::kLinuxCfs), "linux-cfs");
}

}  // namespace
}  // namespace vgrid::os
