// vgrid-lint's own test suite: fixture sources with seeded violations must
// each produce the expected rule-id diagnostic, clean code must stay
// silent, and the suppression grammar must behave. The fixtures live in
// raw strings — the scanner blanks string literals before matching, so
// this file itself lints clean (lint.vgrid covers tests/ too).

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

#include "vgrid_lint/lint.hpp"

namespace lint = vgrid::lint;

namespace {

std::vector<std::string> rules_of(const std::vector<lint::Diagnostic>& ds) {
  std::vector<std::string> rules;
  rules.reserve(ds.size());
  for (const auto& d : ds) rules.push_back(d.rule);
  return rules;
}

}  // namespace

// --- determinism rules -------------------------------------------------------

TEST(LintDeterminism, FlagsRandomDevice) {
  const auto ds = lint::lint_file("src/sim/bad.cpp", R"cpp(
#include <random>
int seed_source() { std::random_device rd; return static_cast<int>(rd()); }
)cpp");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule, "det-random-device");
  EXPECT_EQ(ds[0].line, 3);
}

TEST(LintDeterminism, FlagsLibcRand) {
  const auto ds = lint::lint_file("src/os/bad.cpp", R"cpp(
int pick() { return rand(); }
void reseed(unsigned s) { srand(s); }
)cpp");
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds[0].rule, "det-libc-rand");
  EXPECT_EQ(ds[1].rule, "det-libc-rand");
}

TEST(LintDeterminism, FlagsWallClockReads) {
  const auto ds = lint::lint_file("src/hw/bad.cpp", R"cpp(
#include <chrono>
#include <ctime>
auto a = std::chrono::system_clock::now();
auto b = std::chrono::steady_clock::now();
long c = time(nullptr);
)cpp");
  EXPECT_EQ(rules_of(ds),
            (std::vector<std::string>{"det-wall-clock", "det-wall-clock",
                                      "det-wall-clock"}));
}

TEST(LintDeterminism, FlagsGetenv) {
  const auto ds = lint::lint_file("src/vmm/bad.cpp", R"cpp(
#include <cstdlib>
const char* home() { return std::getenv("HOME"); }
)cpp");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule, "det-getenv");
}

TEST(LintDeterminism, FlagsPointerKeyedUnordered) {
  const auto ds = lint::lint_file("src/core/bad.hpp", R"cpp(
#include <unordered_map>
struct Thread;
std::unordered_map<Thread*, int> priorities;
)cpp");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule, "det-unordered-ptr-key");
}

TEST(LintDeterminism, FlagsUnorderedIteration) {
  const auto ds = lint::lint_file("src/sim/bad.cpp", R"cpp(
#include <unordered_map>
std::unordered_map<int, double> table_;
double sum() {
  double total = 0.0;
  for (const auto& [key, value] : table_) total += value;
  return total;
}
)cpp");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule, "det-unordered-iter");
  EXPECT_EQ(ds[0].line, 6);
}

TEST(LintDeterminism, LookupWithoutIterationIsClean) {
  const auto ds = lint::lint_file("src/sim/good.cpp", R"cpp(
#include <unordered_map>
std::unordered_map<int, double> table_;
double get(int key) {
  const auto it = table_.find(key);
  return it != table_.end() ? it->second : 0.0;
}
)cpp");
  EXPECT_TRUE(ds.empty());
}

TEST(LintDeterminism, OutOfScopeDirsAreExempt) {
  // bench/ and tools/ are front-ends that may time real execution.
  const std::string source = "long t = time(nullptr);\n";
  EXPECT_TRUE(lint::lint_file("bench/fig1_7z.cpp", source).empty());
  EXPECT_FALSE(lint::lint_file("src/sim/x.cpp", source).empty());
}

TEST(LintDeterminism, GatewaysAreAllowlisted) {
  // util/clock.* and util/rng.* are the sanctioned entry points.
  EXPECT_TRUE(lint::lint_file("src/util/clock.cpp",
                              "long t = clock_gettime(0, nullptr);\n")
                  .empty());
  EXPECT_TRUE(
      lint::lint_file("src/util/rng.cpp", "int x = rand();\n").empty());
  EXPECT_FALSE(
      lint::lint_file("src/util/strings.cpp", "int x = rand();\n").empty());
}

TEST(LintDeterminism, TokensInStringsAndCommentsAreIgnored) {
  const auto ds = lint::lint_file("src/sim/good.cpp", R"cpp(
// rand() and system_clock are banned; this comment must not trip the rule.
const char* kMessage = "do not call srand( or time(nullptr) here";
)cpp");
  EXPECT_TRUE(ds.empty());
}

// --- safety rules ------------------------------------------------------------

TEST(LintSafety, FlagsRawNewAndDelete) {
  const auto ds = lint::lint_file("examples/bad.cpp", R"cpp(
int* leak() { return new int(7); }
void drop(int* p) { delete p; }
)cpp");
  EXPECT_EQ(rules_of(ds), (std::vector<std::string>{"safety-raw-new",
                                                    "safety-raw-delete"}));
}

TEST(LintSafety, DeletedFunctionsAreNotRawDelete) {
  const auto ds = lint::lint_file("src/sim/good.hpp", R"cpp(
class Simulator {
 public:
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
};
)cpp");
  EXPECT_TRUE(ds.empty());
}

TEST(LintSafety, FlagsCStyleCast) {
  const auto ds = lint::lint_file("src/stats/bad.cpp", R"cpp(
double narrow(long v) { return (double)v; }
)cpp");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule, "safety-c-cast");
}

TEST(LintSafety, SizeofAndCastlessParensAreClean) {
  const auto ds = lint::lint_file("src/stats/good.cpp", R"cpp(
unsigned long bytes = sizeof(double) * 8;
double widen(long v) { return static_cast<double>(v); }
void discard(int x) { (void)x; }
)cpp");
  EXPECT_TRUE(ds.empty());
}

TEST(LintSafety, FlagsCatchByValue) {
  const auto ds = lint::lint_file("tools/bad.cpp", R"cpp(
#include <stdexcept>
void f() {
  try {
    g();
  } catch (std::runtime_error error) {
  }
}
)cpp");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule, "safety-catch-value");
}

TEST(LintSafety, CatchByReferenceAndEllipsisAreClean) {
  const auto ds = lint::lint_file("tools/good.cpp", R"cpp(
void f() {
  try {
    g();
  } catch (const std::exception& error) {
  } catch (...) {
  }
}
)cpp");
  EXPECT_TRUE(ds.empty());
}

TEST(LintSafety, FlagsOmpWithoutSeedNote) {
  const auto ds = lint::lint_file("src/workloads/bad.cpp", R"cpp(
void scale(double* data, int n) {
#pragma omp parallel for
  for (int i = 0; i < n; ++i) data[i] *= 2.0;
}
)cpp");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule, "safety-omp-seed");
}

TEST(LintSafety, OmpWithSeedNoteIsClean) {
  const auto ds = lint::lint_file("src/workloads/good.cpp", R"cpp(
void scale(double* data, int n) {
  // Deterministic: no RNG in the loop body, so no per-thread seed needed.
#pragma omp parallel for
  for (int i = 0; i < n; ++i) data[i] *= 2.0;
}
)cpp");
  EXPECT_TRUE(ds.empty());
}

TEST(LintSafety, FlagsRedundantVirtualOnOverride) {
  const auto ds = lint::lint_file("src/os/bad.hpp", R"cpp(
class Base {
 public:
  virtual void step() = 0;
};
class Derived : public Base {
 public:
  virtual void step() override;
};
)cpp");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule, "safety-override");
}

TEST(LintSafety, FlagsVirtualDtorInDerivedClass) {
  const auto ds = lint::lint_file("src/os/bad.hpp", R"cpp(
class Base {
 public:
  virtual ~Base() = default;
};
class Derived : public Base {
 public:
  virtual ~Derived();
};
)cpp");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule, "safety-override");
  EXPECT_EQ(ds[0].line, 8);
}

TEST(LintSafety, VirtualDtorInBaseClassIsClean) {
  const auto ds = lint::lint_file("src/os/good.hpp", R"cpp(
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual void tick() = 0;
};
)cpp");
  EXPECT_TRUE(ds.empty());
}

// --- sim hot-path allocation rules -------------------------------------------

TEST(LintSimHotAlloc, FlagsStdFunctionInTheEventQueue) {
  const auto ds = lint::lint_file("src/sim/event_queue.hpp", R"cpp(
#include <functional>
struct Event { std::function<void()> callback; };
)cpp");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule, "sim-hot-alloc");
  EXPECT_EQ(ds[0].line, 3);
}

TEST(LintSimHotAlloc, FlagsAllocatingNewAndFactoriesInTheScheduler) {
  // `new Timer()` draws safety-raw-new too — both rules police it, for
  // different reasons (ownership vs per-event throughput).
  const auto ds = lint::lint_file("src/os/scheduler.cpp", R"cpp(
struct Timer {};
Timer* arm() { return new Timer(); }
auto hold = std::make_unique<Timer>();
)cpp");
  const auto rules = rules_of(ds);
  EXPECT_NE(std::find(rules.begin(), rules.end(), "sim-hot-alloc"),
            rules.end());
  EXPECT_EQ(std::count(rules.begin(), rules.end(), "sim-hot-alloc"), 2);
}

TEST(LintSimHotAlloc, PlacementNewIsExempt) {
  // Placement new constructs into existing storage and allocates nothing —
  // it is exactly how the arena fills its slots, so the rule must not
  // match it. (safety-raw-new does not fire either: `new (` is skipped.)
  const auto ds = lint::lint_file("src/sim/event_queue.cpp", R"cpp(
struct Slot { char buf[64]; };
void fill(Slot* s) { new (static_cast<void*>(s->buf)) int(7); }
)cpp");
  for (const auto& d : ds) EXPECT_NE(d.rule, "sim-hot-alloc");
}

TEST(LintSimHotAlloc, AllowWithReasonSuppresses) {
  const auto ds = lint::lint_file("src/sim/event_queue.cpp", R"cpp(
// vgrid-lint: allow(sim-hot-alloc): setup-time ownership, not hot path.
auto setup = std::make_unique<int>(3);
)cpp");
  EXPECT_TRUE(ds.empty());
}

TEST(LintSimHotAlloc, OutOfScopeFilesAreExempt) {
  // The rule polices only the event queue and the scheduler; testbed code
  // may still use std::function freely.
  const std::string source =
      "#include <functional>\nstd::function<void()> hook;\n";
  EXPECT_TRUE(lint::lint_file("src/core/testbed.cpp", source).empty());
  EXPECT_TRUE(lint::lint_file("src/fleet/vgrid_fleet.cpp", source).empty());
  EXPECT_FALSE(lint::lint_file("src/sim/event_queue.hpp", source).empty());
}

// --- layering ----------------------------------------------------------------

TEST(LintLayering, SimMustNotIncludeUpperLayers) {
  const auto ds = lint::lint_file("src/sim/bad.cpp",
                                  "#include \"os/scheduler.hpp\"\n"
                                  "#include \"vmm/profile.hpp\"\n"
                                  "#include \"core/testbed.hpp\"\n");
  EXPECT_EQ(rules_of(ds),
            (std::vector<std::string>{"layer-include", "layer-include",
                                      "layer-include"}));
}

TEST(LintLayering, FoundationsMustNotIncludeAnything) {
  EXPECT_FALSE(lint::lint_file("src/util/bad.cpp",
                               "#include \"sim/time.hpp\"\n")
                   .empty());
  EXPECT_FALSE(lint::lint_file("src/stats/bad.cpp",
                               "#include \"hw/machine.hpp\"\n")
                   .empty());
}

TEST(LintLayering, DocumentedEdgesAreAllowed) {
  // report renders sim::TraceRecord streams; os sits on hw and sim.
  EXPECT_TRUE(lint::lint_file("src/report/chrome_trace.cpp",
                              "#include \"sim/trace.hpp\"\n")
                  .empty());
  EXPECT_TRUE(lint::lint_file("src/os/scheduler.cpp",
                              "#include \"hw/machine.hpp\"\n")
                  .empty());
  // System includes and front-end files are never layering violations.
  EXPECT_TRUE(
      lint::lint_file("src/sim/simulator.cpp", "#include <vector>\n")
          .empty());
  EXPECT_TRUE(lint::lint_file("tools/vgrid_main.cpp",
                              "#include \"core/testbed.hpp\"\n")
                  .empty());
}

TEST(LintLayering, ScenarioSpeaksHwOsVmmVocabulary) {
  // scenario is declarative data over the hw/os/vmm vocabulary, and core
  // builds testbeds from it — both directions of the documented edge.
  EXPECT_TRUE(lint::lint_file("src/scenario/scenario.cpp",
                              "#include \"hw/machine.hpp\"\n"
                              "#include \"os/scheduler.hpp\"\n"
                              "#include \"vmm/profile.hpp\"\n"
                              "#include \"util/error.hpp\"\n")
                  .empty());
  EXPECT_TRUE(lint::lint_file("src/core/experiments.cpp",
                              "#include \"scenario/scenario.hpp\"\n")
                  .empty());
  // Front ends may consume scenarios directly.
  EXPECT_TRUE(lint::lint_file("bench/bench_args.hpp",
                              "#include \"scenario/scenario.hpp\"\n")
                  .empty());
}

TEST(LintLayering, ScenarioMustNotReachUpOrBeReachedFromBelow) {
  // scenario must not depend on the experiment engine or rendering...
  EXPECT_EQ(rules_of(lint::lint_file("src/scenario/bad.cpp",
                                     "#include \"core/experiments.hpp\"\n"
                                     "#include \"report/table.hpp\"\n")),
            (std::vector<std::string>{"layer-include", "layer-include"}));
  // ...and the layers it describes must not know about it.
  EXPECT_EQ(rules_of(lint::lint_file("src/hw/bad.cpp",
                                     "#include \"scenario/scenario.hpp\"\n")),
            (std::vector<std::string>{"layer-include"}));
  EXPECT_EQ(rules_of(lint::lint_file("src/vmm/bad.cpp",
                                     "#include \"scenario/scenario.hpp\"\n")),
            (std::vector<std::string>{"layer-include"}));
}

TEST(LintLayering, FleetSitsBesideCoreAtTheTop) {
  // fleet builds per-host testbeds from sampled scenario data: the whole
  // simulation vocabulary below it is fair game.
  EXPECT_TRUE(lint::lint_file("src/fleet/fleet.cpp",
                              "#include \"core/testbed.hpp\"\n"
                              "#include \"core/task_pool.hpp\"\n"
                              "#include \"scenario/scenario.hpp\"\n"
                              "#include \"obs/registry.hpp\"\n"
                              "#include \"hw/cpu_chip.hpp\"\n"
                              "#include \"os/program.hpp\"\n"
                              "#include \"vmm/virtual_machine.hpp\"\n"
                              "#include \"util/rng.hpp\"\n")
                  .empty());
}

TEST(LintLayering, FleetMustNotRenderOrBeReachedFromBelow) {
  // fleet aggregates into obs instruments — it must not grow its own
  // rendering or protocol dependencies...
  EXPECT_EQ(rules_of(lint::lint_file("src/fleet/bad.cpp",
                                     "#include \"report/table.hpp\"\n"
                                     "#include \"grid/deployment.hpp\"\n")),
            (std::vector<std::string>{"layer-include", "layer-include"}));
  // ...and the layers it samples from must not know about it.
  EXPECT_EQ(rules_of(lint::lint_file("src/scenario/bad.cpp",
                                     "#include \"fleet/fleet.hpp\"\n")),
            (std::vector<std::string>{"layer-include"}));
  EXPECT_EQ(rules_of(lint::lint_file("src/core/bad.cpp",
                                     "#include \"fleet/sampler.hpp\"\n")),
            (std::vector<std::string>{"layer-include"}));
}

// --- observability -----------------------------------------------------------

TEST(LintObservability, FlagsDirectStdioInLibraryCode) {
  const auto ds = lint::lint_file("src/vmm/bad.cpp", R"cpp(
#include <cstdio>
#include <iostream>
void report_progress(int pct) {
  std::printf("progress %d\n", pct);
  std::cout << pct;
}
)cpp");
  EXPECT_EQ(rules_of(ds),
            (std::vector<std::string>{"obs-stdio", "obs-stdio"}));
}

TEST(LintObservability, ReportObsAndFrontEndsAreExempt) {
  const std::string source = "void f() { std::printf(\"x\\n\"); }\n";
  EXPECT_TRUE(lint::lint_file("src/report/table.cpp", source).empty());
  EXPECT_TRUE(lint::lint_file("src/obs/registry.cpp", source).empty());
  EXPECT_TRUE(lint::lint_file("tools/vgrid_main.cpp", source).empty());
  EXPECT_TRUE(lint::lint_file("bench/fig1_7z.cpp", source).empty());
}

TEST(LintObservability, ProfScopeInstrumentationIsNotStdio) {
  // PROF_SCOPE is the sanctioned profiling macro — instrumenting a hot
  // path must not trip the stdio rule, and sim code may include the
  // profiler header (obs is a documented lateral edge).
  const auto ds = lint::lint_file("src/sim/event_queue.cpp", R"cpp(
#include "obs/profiler.hpp"
void pop_event() { PROF_SCOPE("sim.event_queue.pop"); }
)cpp");
  EXPECT_TRUE(ds.empty());
}

TEST(LintObservability, FormattingIntoBuffersIsNotStdio) {
  // snprintf writes to memory, not a stream; only stream writes bypass
  // the obs/report layers.
  const auto ds = lint::lint_file("src/hw/fmt.cpp", R"cpp(
#include <cstdio>
void render(char* buffer, int n) { std::snprintf(buffer, 8, "%d", n); }
)cpp");
  EXPECT_TRUE(ds.empty());
}

TEST(LintObservability, AllowSilencesSanctionedGateway) {
  const auto ds = lint::lint_file("src/util/bad_log.cpp", R"cpp(
// vgrid-lint: allow(obs-stdio): this fixture plays the sanctioned
// stderr gateway.
void log_line() { std::fprintf(stderr, "x\n"); }
)cpp");
  EXPECT_TRUE(ds.empty());
}

TEST(LintObservability, FlagsRawJournalWritesOutsideObs) {
  // Direct EventLog calls survive the VGRID_EVENTLOG kill switch; every
  // instrumentation site must go through the EVT_* macros instead.
  const auto ds = lint::lint_file("src/fleet/bad.cpp", R"cpp(
#include "obs/event_log.hpp"
void record(vgrid::obs::EventLog* journal) {
  journal->open_trace(1, 0, "vmplayer");
  journal->append_event(1, vgrid::obs::EventKind::kCreated, 0, 0, 0);
  journal->close_trace(1);
  auto* ambient = vgrid::obs::current_event_log();
  static_cast<void>(ambient);
}
)cpp");
  EXPECT_EQ(rules_of(ds),
            (std::vector<std::string>{
                "obs-eventlog-gateway", "obs-eventlog-gateway",
                "obs-eventlog-gateway", "obs-eventlog-gateway"}));
}

TEST(LintObservability, EvtMacrosMergesAndObsItselfAreExempt) {
  // The macros ARE the gateway, merge_from is a read-side fold, src/obs
  // implements the journal, and front-ends are out of library scope.
  const auto macro_site = lint::lint_file("src/grid/good.cpp", R"cpp(
#include "obs/event_log.hpp"
void record() { EVT_TRACE_OPEN(1, 0, "vmplayer"); EVT_TRACE_CLOSE(1); }
)cpp");
  EXPECT_TRUE(macro_site.empty());
  const auto merge_site = lint::lint_file("src/core/good.cpp", R"cpp(
void fold(vgrid::obs::EventLog& into, const vgrid::obs::EventLog& sub) {
  into.merge_from(sub);
}
)cpp");
  EXPECT_TRUE(merge_site.empty());
  const std::string raw = "void f(L* j) { j->close_trace(1); }\n";
  EXPECT_TRUE(lint::lint_file("src/obs/event_log.cpp", raw).empty());
  EXPECT_TRUE(lint::lint_file("tools/vgrid_main.cpp", raw).empty());
}

TEST(LintObservability, AllowSilencesSanctionedMergeSeam) {
  const auto ds = lint::lint_file("src/core/seam.cpp", R"cpp(
// vgrid-lint: allow(obs-eventlog-gateway): this fixture plays the
// TaskPool merge seam that routes per-task sub-logs.
void route() { auto* parent = vgrid::obs::current_event_log(); (void)parent; }
)cpp");
  EXPECT_TRUE(ds.empty());
}

TEST(LintObservability, FlagsRawRegistryScrapesOutsideObs) {
  // Ad-hoc snapshot calls outside src/obs bypass obs::Timeseries::sample,
  // the deterministic scrape gateway (see timeseries.hpp's quartet
  // contract) — each call site is flagged.
  const auto ds = lint::lint_file("src/fleet/bad.cpp", R"cpp(
#include "obs/registry.hpp"
std::string dump(const vgrid::obs::Registry& registry) {
  std::string out = registry.snapshot_json();
  out += registry.snapshot_prometheus();
  return out;
}
)cpp");
  EXPECT_EQ(rules_of(ds),
            (std::vector<std::string>{"obs-timeseries-gateway",
                                      "obs-timeseries-gateway"}));
}

TEST(LintObservability, TimeseriesGatewayObsAndFrontEndsAreExempt) {
  // src/obs implements both the registry and the sampler, and front ends
  // (tools/, bench/, tests/) legitimately export run-end snapshots.
  const std::string raw =
      "std::string f(const R& r) { return r.snapshot_json(); }\n";
  EXPECT_TRUE(lint::lint_file("src/obs/registry.cpp", raw).empty());
  EXPECT_TRUE(lint::lint_file("src/obs/timeseries.cpp", raw).empty());
  EXPECT_TRUE(lint::lint_file("tools/vgrid_main.cpp", raw).empty());
  EXPECT_TRUE(lint::lint_file("tests/test_obs.cpp", raw).empty());
}

TEST(LintObservability, AllowSilencesSanctionedScrapeRpc) {
  // The live SCRAPE endpoint (grid/server) is the one sanctioned raw
  // scrape: wall-clock exposition that never feeds deterministic exports.
  const auto ds = lint::lint_file("src/grid/server.cpp", R"cpp(
// vgrid-lint: allow(obs-timeseries-gateway): this fixture plays the
// live SCRAPE RPC exposition path.
std::string expose(const R& r) { return r.snapshot_prometheus(); }
)cpp");
  EXPECT_TRUE(ds.empty());
}

// --- mc-purity ---------------------------------------------------------------

TEST(LintMcPurity, FlagsSanctionedClockGatewaysInModelCheckedCode) {
  // det-wall-clock already bans std clocks everywhere in src/; the mc rule
  // additionally bans the util/clock gateways, which are legal elsewhere.
  const auto ds = lint::lint_file("src/mc/bad.cpp", R"cpp(
#include "util/clock.hpp"
long stamp() { return vgrid::util::monotonic_time_ns(); }
)cpp");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule, "mc-wall-clock");
  EXPECT_EQ(ds[0].line, 3);
}

TEST(LintMcPurity, FlagsRealSocketCallsInProtocolCore) {
  const auto ds = lint::lint_file("src/grid/server_logic.cpp", R"cpp(
int listen_on(int fd) { return listen(fd, 8); }
)cpp");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule, "mc-real-socket");
}

TEST(LintMcPurity, FlagsUnorderedContainersEvenWithoutIteration) {
  // The determinism family only flags unordered containers on iteration or
  // pointer keys; in model-checked code the *declaration* is already wrong
  // because canonical state hashing needs ordered traversal. The #include
  // itself is flagged too — the header has no legitimate use in scope.
  const auto ds = lint::lint_file("src/mc/bad.hpp", R"cpp(
#include <unordered_map>
std::unordered_map<int, int> grants_;
)cpp");
  EXPECT_EQ(rules_of(ds),
            (std::vector<std::string>{"mc-unordered", "mc-unordered"}));
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds[0].line, 2);
  EXPECT_EQ(ds[1].line, 3);
}

TEST(LintMcPurity, RealRpcWrappersStayOutOfScope) {
  // grid/server and grid/client own the sockets and clocks by design —
  // only the logic the explorer drives must be pure.
  const std::string clock_read =
      "long t = vgrid::util::monotonic_time_ns();\n";
  EXPECT_TRUE(lint::lint_file("src/grid/server.cpp", clock_read).empty());
  EXPECT_TRUE(lint::lint_file("src/grid/client.cpp", clock_read).empty());
  EXPECT_FALSE(
      lint::lint_file("src/grid/validator.cpp", clock_read).empty());
  EXPECT_FALSE(
      lint::lint_file("src/grid/workunit.hpp", clock_read).empty());
}

TEST(LintMcPurity, AllowSilencesWithReason) {
  const auto ds = lint::lint_file("src/mc/x.cpp", R"cpp(
// vgrid-lint: allow(mc-unordered): fixture exercising the suppression.
std::unordered_set<int> scratch_;
)cpp");
  EXPECT_TRUE(ds.empty());
}

// --- suppressions ------------------------------------------------------------

TEST(LintSuppression, AllowWithReasonSilencesLineAndNext) {
  const auto ds = lint::lint_file("src/sim/x.cpp", R"cpp(
// vgrid-lint: allow(det-libc-rand): calibrating against libc for a test.
int x = rand();
)cpp");
  EXPECT_TRUE(ds.empty());
}

TEST(LintSuppression, AllowSpansItsCommentBlockOntoTheCode) {
  // Real reasons wrap over several comment lines; the allow must reach the
  // first code line after the block, but not past it.
  const auto ds = lint::lint_file("src/sim/x.cpp", R"cpp(
// vgrid-lint: allow(det-libc-rand): a reason that wraps across several
// comment lines because the justification genuinely needs the space to
// explain itself properly.
int covered = rand();
int uncovered = rand();
)cpp");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule, "det-libc-rand");
  EXPECT_EQ(ds[0].line, 6);
}

TEST(LintSuppression, AllowFileCoversWholeFile) {
  const auto ds = lint::lint_file("src/grid/x.cpp", R"cpp(
// vgrid-lint: allow-file(det-wall-clock): real-socket RPC measures real
// time by design (ARCHITECTURE.md real-I/O subsystems).
long a = time(nullptr);
long later = time(nullptr);
)cpp");
  EXPECT_TRUE(ds.empty());
}

TEST(LintSuppression, AllowWithoutReasonIsItselfAViolation) {
  const auto ds = lint::lint_file(
      "src/sim/x.cpp", "// vgrid-lint: allow(det-libc-rand)\nint x = rand();\n");
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds[0].rule, "lint-allow");
  EXPECT_EQ(ds[1].rule, "det-libc-rand");  // and it does NOT suppress
}

TEST(LintSuppression, AllowUnknownRuleIsAViolation) {
  const auto ds = lint::lint_file(
      "src/sim/x.cpp", "// vgrid-lint: allow(not-a-rule): whatever\n");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule, "lint-allow");
}

// --- diagnostics format and tree walk ---------------------------------------

TEST(LintFormat, FileLineRuleMessage) {
  lint::Diagnostic d{"src/sim/event_queue.cpp", 42, "det-libc-rand", "no"};
  EXPECT_EQ(lint::format(d), "src/sim/event_queue.cpp:42: det-libc-rand: no");
}

TEST(LintTree, WalksFixtureTreeAndReportsEverySeededViolation) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() / "vgrid_lint_tree_fixture";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "sim");
  fs::create_directories(root / "src" / "util");
  {
    std::ofstream out(root / "src" / "sim" / "bad.cpp");
    out << "#include \"core/testbed.hpp\"\n"   // layer-include
        << "int x = rand();\n";                 // det-libc-rand
  }
  {
    std::ofstream out(root / "src" / "sim" / "good.cpp");
    out << "int answer() { return 42; }\n";
  }
  {
    std::ofstream out(root / "src" / "util" / "ok.cpp");
    out << "int triple(int v) { return 3 * v; }\n";
  }
  const auto ds = lint::lint_tree(root.string());
  EXPECT_EQ(rules_of(ds),
            (std::vector<std::string>{"layer-include", "det-libc-rand"}));
  EXPECT_EQ(ds[0].file, "src/sim/bad.cpp");
  fs::remove_all(root);
}

TEST(LintTree, TheRealTreeIsClean) {
  // The same invariant ctest `lint.vgrid` enforces, reachable from the
  // GTest suite: the repository itself must lint clean. VGRID_SOURCE_DIR
  // is injected as a compile definition by tests/CMakeLists.txt.
#ifdef VGRID_SOURCE_DIR
  const auto ds = lint::lint_tree(VGRID_SOURCE_DIR);
  for (const auto& d : ds) ADD_FAILURE() << lint::format(d);
#else
  GTEST_SKIP() << "VGRID_SOURCE_DIR not defined";
#endif
}
