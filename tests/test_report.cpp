// Tests for the report module: tables, CSV escaping, bar charts and CSV
// file output.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "report/barchart.hpp"
#include "report/chrome_trace.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace vgrid::report {
namespace {

TEST(Table, AsciiAlignsColumns) {
  Table table("Title");
  table.set_header({"name", "value"});
  table.add_row({"vmplayer", "1.15"});
  table.add_row({"qemu", "2.10"});
  const std::string out = table.ascii();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("vmplayer  1.15"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, NumericRowHelperFormats) {
  Table table;
  table.set_header({"env", "a", "b"});
  table.add_row("x", {1.23456, 2.0}, 2);
  EXPECT_NE(table.ascii().find("1.23"), std::string::npos);
  EXPECT_EQ(table.rows().size(), 1u);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table table;
  table.set_header({"label", "note"});
  table.add_row({"a,b", "say \"hi\""});
  const std::string csv = table.csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvPlainFieldsUnquoted) {
  Table table;
  table.set_header({"x"});
  table.add_row({"plain"});
  EXPECT_EQ(table.csv(), "x\nplain\n");
}

TEST(BarChart, BarsScaleToMaximum) {
  BarChart chart("demo", "Mbps");
  chart.add("big", 100.0);
  chart.add("small", 50.0);
  const std::string out = chart.ascii(20);
  // The big bar must be about twice the small one.
  std::size_t big = 0, small = 0;
  for (const auto& line : {out.substr(out.find("big")),
                           out.substr(out.find("small"))}) {
    const std::size_t hashes =
        static_cast<std::size_t>(std::count(line.begin(),
                                            line.begin() +
                                                static_cast<long>(
                                                    line.find('\n')),
                                            '#'));
    if (line.rfind("big", 0) == 0) big = hashes;
    if (line.rfind("small", 0) == 0) small = hashes;
  }
  EXPECT_EQ(big, 20u);
  EXPECT_EQ(small, 10u);
}

TEST(BarChart, ReferenceLineRendered) {
  BarChart chart;
  chart.set_reference(1.0, "native");
  chart.add("vm", 1.5);
  const std::string out = chart.ascii();
  EXPECT_NE(out.find("native"), std::string::npos);
}

TEST(Csv, WritesFile) {
  Table table("t");
  table.set_header({"a"});
  table.add_row({"1"});
  const auto path =
      std::filesystem::temp_directory_path() / "vgrid-test.csv";
  write_csv(path.string(), table);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a");
  std::filesystem::remove(path);
}

TEST(Csv, FailsOnBadPath) {
  Table table;
  EXPECT_THROW(write_csv("/nonexistent-dir/x.csv", table),
               util::SystemError);
}

TEST(Table, HeaderlessTableRendersRowsOnly) {
  Table table;
  table.add_row({"a", "b"});
  const std::string out = table.ascii();
  EXPECT_NE(out.find("a  b"), std::string::npos);
  EXPECT_EQ(out.find("---"), std::string::npos);  // no separator
}

TEST(Table, EmptyTableIsJustTheTitle) {
  Table table("only title");
  EXPECT_EQ(table.ascii(), "only title\n");
  EXPECT_EQ(table.csv(), "");
}

TEST(Table, RaggedRowsTolerated) {
  Table table;
  table.set_header({"a", "b", "c"});
  table.add_row({"1"});
  table.add_row({"1", "2", "3"});
  const std::string out = table.ascii();
  EXPECT_NE(out.find("3"), std::string::npos);
}

TEST(BarChart, AllZeroValuesDoNotDivideByZero) {
  BarChart chart;
  chart.add("x", 0.0);
  chart.add("y", 0.0);
  const std::string out = chart.ascii(10);
  EXPECT_NE(out.find("x"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '#'), 0);
}

TEST(BarChart, NegativeAndEmptyInputsAreSafe) {
  BarChart empty;
  EXPECT_TRUE(empty.ascii().empty() || !empty.ascii().empty());
  BarChart chart("t");
  chart.add("neg", -5.0);
  chart.add("pos", 5.0);
  const std::string out = chart.ascii(10);
  EXPECT_NE(out.find("pos"), std::string::npos);
}

TEST(JsonEscape, HandlesQuotesBackslashesAndControlCharacters) {
  EXPECT_EQ(util::json_escape("plain"), "plain");
  EXPECT_EQ(util::json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(util::json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(util::json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(util::json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(ChromeTrace, EscapesQuotesAndBackslashesInNames) {
  std::vector<sim::TraceRecord> records;
  records.push_back({0, sim::TraceKind::kSchedule,
                     "thread \"7z\\main\"", "detail \"quoted\""});
  records.push_back({1000, sim::TraceKind::kPreempt,
                     "thread \"7z\\main\"", ""});
  const std::string json = report::chrome_trace_json(records);
  // Raw quotes/backslashes inside JSON string values would make the
  // document unparseable; they must come out escaped.
  EXPECT_NE(json.find("thread \\\"7z\\\\main\\\""), std::string::npos);
  EXPECT_EQ(json.find("\"thread \"7z"), std::string::npos);
}

TEST(ObsTrace, RendersWallAndSimRowsNextToSimRecords) {
  std::vector<obs::SpanRecord> spans;
  obs::SpanRecord span;
  span.name = "measure \"q\"";
  span.wall_start_ns = 5000;
  span.wall_end_ns = 9000;
  span.has_sim_time = true;
  span.sim_start_ns = 0;
  span.sim_end_ns = 2000;
  spans.push_back(span);
  std::vector<sim::TraceRecord> records;
  records.push_back({0, sim::TraceKind::kSchedule, "t0", ""});
  records.push_back({2000, sim::TraceKind::kBlock, "t0", ""});
  const std::string json = report::obs_trace_json(spans, records);
  EXPECT_NE(json.find("wall-time"), std::string::npos);
  EXPECT_NE(json.find("sim-time"), std::string::npos);
  EXPECT_NE(json.find("measure \\\"q\\\""), std::string::npos);
  // Sim trace records are spliced in alongside the spans.
  EXPECT_NE(json.find("t0"), std::string::npos);
  EXPECT_EQ(json.find("\"measure \"q"), std::string::npos);
}

}  // namespace
}  // namespace vgrid::report
