// Tests for vgrid::scenario — the declarative testbed subsystem.
//
// Three families:
//  - identity: the embedded `paper` scenario IS the paper's testbed
//    (single source of truth for the constants core used to hardcode);
//  - round-trip: parse(canonical_text()) is byte-stable for every
//    built-in, and the content hash separates them;
//  - rejection: every malformed input is a util::ConfigError with a
//    precise "<source>:<line>:" diagnostic — never UB, never a silent
//    default — including deterministic truncation/mutation fuzzing.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/testbed.hpp"
#include "scenario/scenario.hpp"
#include "util/error.hpp"
#include "util/units.hpp"
#include "vmm/profile.hpp"

namespace vgrid {
namespace {

// Expect parse() to throw a ConfigError whose message carries the given
// fragment (and the source:line prefix when `line` > 0).
void expect_rejected(const std::string& text, const std::string& fragment,
                     int line = 0) {
  try {
    (void)scenario::parse(text, "test.scn");
    FAIL() << "expected ConfigError containing '" << fragment << "'";
  } catch (const util::ConfigError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(fragment), std::string::npos) << what;
    EXPECT_EQ(what.rfind("test.scn:", 0), 0u) << what;
    if (line > 0) {
      EXPECT_NE(what.find("test.scn:" + std::to_string(line) + ":"),
                std::string::npos)
          << what;
    }
  }
}

std::string valid_minimal() {
  return "[scenario]\nname = mini\n"
         "[machine]\n[os]\n[workloads]\n[sweep]\n"
         "[vmm]\nprofiles = vmplayer\n";
}

// --- identity: the embedded paper scenario -----------------------------------

TEST(ScenarioPaper, ConstantsMatchThePaperTestbed) {
  const scenario::Scenario& paper = scenario::paper();
  // §4 of the paper: Core 2 Duo E6600, 2x2.40 GHz, 1 GB DDR2, Windows XP.
  EXPECT_EQ(paper.machine.chip.cores, 2);
  EXPECT_EQ(paper.machine.chip.frequency_hz, 2.4e9);
  EXPECT_EQ(paper.machine.ram_bytes, 1 * util::GiB);
  EXPECT_EQ(paper.host_os, os::HostOs::kWindowsXp);
  // The methodology: 50 repetitions with ~1% input variation.
  EXPECT_EQ(paper.sweep.repetitions, 50);
  EXPECT_EQ(paper.sweep.input_jitter, 0.01);
  EXPECT_EQ(paper.sweep.vm_count, 1);
}

TEST(ScenarioPaper, IsTheSingleSourceOfPaperMachineConfig) {
  // core::paper_machine_config() returns the embedded scenario's machine;
  // the two must be bit-equal in every rate-relevant field.
  const hw::MachineConfig from_core = core::paper_machine_config();
  const hw::MachineConfig& from_scenario = scenario::paper().machine;
  EXPECT_EQ(from_core.chip.cores, from_scenario.chip.cores);
  EXPECT_EQ(from_core.chip.frequency_hz, from_scenario.chip.frequency_hz);
  EXPECT_EQ(from_core.chip.ipc_user_int, from_scenario.chip.ipc_user_int);
  EXPECT_EQ(from_core.chip.ipc_user_fp, from_scenario.chip.ipc_user_fp);
  EXPECT_EQ(from_core.chip.ipc_memory, from_scenario.chip.ipc_memory);
  EXPECT_EQ(from_core.chip.ipc_kernel, from_scenario.chip.ipc_kernel);
  EXPECT_EQ(from_core.chip.interference_cap,
            from_scenario.chip.interference_cap);
  EXPECT_EQ(from_core.ram_bytes, from_scenario.ram_bytes);
  EXPECT_EQ(from_core.disk.sustained_read_bps,
            from_scenario.disk.sustained_read_bps);
  EXPECT_EQ(from_core.disk.sustained_write_bps,
            from_scenario.disk.sustained_write_bps);
}

TEST(ScenarioPaper, ProfilesBitEqualTheCalibratedBuiltins) {
  const scenario::Scenario& paper = scenario::paper();
  const std::vector<std::string> expected = {"vmplayer", "qemu",
                                             "virtualbox", "virtualpc"};
  ASSERT_EQ(paper.profiles.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const vmm::VmmProfile& parsed = paper.profiles[i];
    const auto builtin = vmm::profiles::by_name(expected[i]);
    ASSERT_TRUE(builtin) << expected[i];
    EXPECT_EQ(parsed.name, builtin->name);
    EXPECT_EQ(parsed.exec.user_int, builtin->exec.user_int);
    EXPECT_EQ(parsed.exec.user_fp, builtin->exec.user_fp);
    EXPECT_EQ(parsed.exec.memory, builtin->exec.memory);
    EXPECT_EQ(parsed.exec.kernel, builtin->exec.kernel);
    EXPECT_EQ(parsed.disk.path_multiplier, builtin->disk.path_multiplier);
    EXPECT_EQ(parsed.disk.per_request_us, builtin->disk.per_request_us);
    EXPECT_EQ(parsed.bridged.has_value(), builtin->bridged.has_value());
    if (parsed.bridged) {
      EXPECT_EQ(parsed.bridged->cap_mbps, builtin->bridged->cap_mbps);
      EXPECT_EQ(parsed.bridged->per_transfer_us,
                builtin->bridged->per_transfer_us);
    }
    EXPECT_EQ(parsed.nat.has_value(), builtin->nat.has_value());
    if (parsed.nat) {
      EXPECT_EQ(parsed.nat->cap_mbps, builtin->nat->cap_mbps);
      EXPECT_EQ(parsed.nat->per_transfer_us, builtin->nat->per_transfer_us);
    }
    EXPECT_EQ(parsed.host.service_demand_cores,
              builtin->host.service_demand_cores);
    EXPECT_EQ(parsed.host.uniform_demand_cores,
              builtin->host.uniform_demand_cores);
    EXPECT_EQ(parsed.default_ram_bytes, builtin->default_ram_bytes);
  }
}

// --- round-trip and identity hash ---------------------------------------------

TEST(ScenarioRoundTrip, CanonicalTextIsAParseFixedPoint) {
  for (const std::string& name : scenario::builtin_names()) {
    const scenario::Scenario first = scenario::load(name);
    const std::string canonical = first.canonical_text();
    const scenario::Scenario second =
        scenario::parse(canonical, name + ".canonical");
    EXPECT_EQ(second.canonical_text(), canonical) << name;
    EXPECT_EQ(second.content_hash(), first.content_hash()) << name;
  }
}

TEST(ScenarioRoundTrip, BuiltinHashesAreDistinct) {
  std::vector<std::uint64_t> hashes;
  for (const std::string& name : scenario::builtin_names()) {
    hashes.push_back(scenario::load(name).content_hash());
  }
  for (std::size_t i = 0; i < hashes.size(); ++i) {
    for (std::size_t j = i + 1; j < hashes.size(); ++j) {
      EXPECT_NE(hashes[i], hashes[j]);
    }
  }
}

TEST(ScenarioRoundTrip, HashHexIsSixteenLowercaseDigits) {
  const std::string hex = scenario::paper().hash_hex();
  ASSERT_EQ(hex.size(), 16u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
  }
}

TEST(ScenarioRoundTrip, LoadReadsAFileWhenNotABuiltin) {
  const auto path =
      std::filesystem::temp_directory_path() / "vgrid-scenario-test.scn";
  {
    std::ofstream out(path);
    out << scenario::load("quadcore").canonical_text();
  }
  const scenario::Scenario from_file = scenario::load(path.string());
  EXPECT_EQ(from_file.content_hash(),
            scenario::load("quadcore").content_hash());
  std::filesystem::remove(path);
}

TEST(ScenarioRoundTrip, UserProfileSurvivesTheRoundTrip) {
  const std::string text =
      "[scenario]\nname = custom\n"
      "[machine]\ncores = 4\nram_mib = 2048\n"
      "[os]\nflavour = linux-cfs\n[workloads]\n[sweep]\n"
      "[vmm]\nprofiles = myvmm vmplayer\n"
      "[profile myvmm]\n"
      "user_int = 1.25\nuser_fp = 1.5\nmemory = 2\nkernel = 10\n"
      "disk_path_multiplier = 3\nbridged_cap_mbps = 80\n";
  const scenario::Scenario first = scenario::parse(text, "custom.scn");
  ASSERT_EQ(first.profiles.size(), 2u);
  EXPECT_EQ(first.profiles[0].name, "myvmm");
  EXPECT_EQ(first.profiles[0].exec.user_int, 1.25);
  const scenario::Scenario second =
      scenario::parse(first.canonical_text(), "custom.canonical");
  EXPECT_EQ(second.canonical_text(), first.canonical_text());
}

// --- rejection ----------------------------------------------------------------

TEST(ScenarioReject, UnknownSection) {
  expect_rejected(valid_minimal() + "[bogus]\n", "unknown section [bogus]",
                  9);
}

TEST(ScenarioReject, UnknownKey) {
  expect_rejected("[scenario]\nname = x\ncolour = blue\n",
                  "unknown key 'colour' in [scenario]", 3);
}

TEST(ScenarioReject, KeyBeforeAnySection) {
  expect_rejected("name = x\n", "before any [section] header", 1);
}

TEST(ScenarioReject, UnterminatedSectionHeader) {
  expect_rejected("[scenario\nname = x\n", "unterminated section header",
                  1);
}

TEST(ScenarioReject, DuplicateSection) {
  expect_rejected("[scenario]\nname = x\n[scenario]\n",
                  "duplicate section [scenario]", 3);
}

TEST(ScenarioReject, DuplicateKey) {
  expect_rejected("[scenario]\nname = x\nname = y\n", "duplicate key 'name'",
                  3);
}

TEST(ScenarioReject, OutOfRangeCores) {
  expect_rejected("[machine]\ncores = 0\n", "out of range");
  expect_rejected("[machine]\ncores = 1000\n", "out of range");
}

TEST(ScenarioReject, NonNumericValue) {
  expect_rejected("[machine]\nfrequency_ghz = fast\n",
                  "not a finite number", 2);
  expect_rejected("[machine]\ncores = 2.5\n", "not an unsigned integer", 2);
}

TEST(ScenarioReject, UnknownHostOs) {
  expect_rejected("[os]\nflavour = beos\n", "unknown host OS 'beos'", 2);
}

TEST(ScenarioReject, MissingRequiredSection) {
  expect_rejected("[scenario]\nname = x\n", "missing required section");
}

TEST(ScenarioReject, MissingName) {
  expect_rejected(
      "[scenario]\n[machine]\n[os]\n[workloads]\n[sweep]\n"
      "[vmm]\nprofiles = vmplayer\n",
      "missing required key 'name'");
}

TEST(ScenarioReject, EmptyProfileList) {
  expect_rejected(
      "[scenario]\nname = x\n[machine]\n[os]\n[workloads]\n[sweep]\n"
      "[vmm]\n",
      "must list at least one profile");
}

TEST(ScenarioReject, UnknownProfileReference) {
  expect_rejected(
      "[scenario]\nname = x\n[machine]\n[os]\n[workloads]\n[sweep]\n"
      "[vmm]\nprofiles = xen\n",
      "unknown profile 'xen'");
}

TEST(ScenarioReject, ProfileListedTwice) {
  expect_rejected(
      "[scenario]\nname = x\n[machine]\n[os]\n[workloads]\n[sweep]\n"
      "[vmm]\nprofiles = vmplayer vmplayer\n",
      "listed twice");
}

TEST(ScenarioReject, UnreferencedUserProfile) {
  expect_rejected(valid_minimal() +
                      "[profile ghost]\nuser_int = 1\nuser_fp = 1\nmemory = 1\n"
                      "kernel = 1\nbridged_cap_mbps = 10\n",
                  "defined but not listed");
}

TEST(ScenarioReject, UserProfileWithoutNetworkModel) {
  expect_rejected(
      "[scenario]\nname = x\n[machine]\n[os]\n[workloads]\n[sweep]\n"
      "[vmm]\nprofiles = p\n"
      "[profile p]\nuser_int = 1\nuser_fp = 1\nmemory = 1\nkernel = 1\n",
      "bridged_* or nat_* network model");
}

TEST(ScenarioReject, RamOvercommit) {
  // 4 VMs x 300 MB default guest RAM > 1 GB machine.
  expect_rejected(
      "[scenario]\nname = x\n[machine]\n[os]\n[workloads]\n"
      "[sweep]\nvm_count = 4\n"
      "[vmm]\nprofiles = vmplayer\n",
      "exceed the machine's");
}

TEST(ScenarioReject, IobenchSizesMustBeNondecreasing) {
  expect_rejected("[workloads]\niobench_file_bytes = 2097152 131072\n",
                  "nondecreasing");
}

TEST(ScenarioReject, EinsteinSamplesMustBePowerOfTwo) {
  expect_rejected("[workloads]\neinstein_samples = 10000\n",
                  "not a power of two");
}

TEST(ScenarioReject, UnknownSweepPriority) {
  expect_rejected("[sweep]\nvm_priorities = idle background\n",
                  "unknown priority 'background'");
}

TEST(ScenarioReject, LoadOnNonsenseNamesTheBuiltins) {
  try {
    (void)scenario::load("no-such-scenario");
    FAIL() << "expected ConfigError";
  } catch (const util::ConfigError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("paper"), std::string::npos) << what;
    EXPECT_NE(what.find("quadcore"), std::string::npos) << what;
  }
}

TEST(ScenarioReject, StrictHostOsAndPrioritySpellings) {
  EXPECT_EQ(scenario::parse_host_os("xp"), os::HostOs::kWindowsXp);
  EXPECT_EQ(scenario::parse_host_os("windows-xp"), os::HostOs::kWindowsXp);
  EXPECT_EQ(scenario::parse_host_os("linux"), os::HostOs::kLinuxCfs);
  EXPECT_EQ(scenario::parse_host_os("linux-cfs"), os::HostOs::kLinuxCfs);
  EXPECT_THROW((void)scenario::parse_host_os("win95"), util::ConfigError);
  EXPECT_EQ(scenario::parse_priority("idle"), os::PriorityClass::kIdle);
  EXPECT_EQ(scenario::parse_priority("normal"), os::PriorityClass::kNormal);
  EXPECT_EQ(scenario::parse_priority("high"), os::PriorityClass::kHigh);
  EXPECT_THROW((void)scenario::parse_priority("realtime"),
               util::ConfigError);
}

// --- deterministic fuzzing ------------------------------------------------------
// No input derived from valid text may crash, hang, or succeed with
// inconsistent state: the parser either returns a validated Scenario or
// throws ConfigError. Seeds are fixed — same failures on every run.

TEST(ScenarioFuzz, TruncationAtEveryByteIsParseOrConfigError) {
  const std::string text = scenario::paper().canonical_text();
  for (std::size_t cut = 0; cut < text.size(); ++cut) {
    try {
      const scenario::Scenario partial =
          scenario::parse(text.substr(0, cut), "truncated.scn");
      // A prefix that still parses must still be internally consistent.
      EXPECT_FALSE(partial.profiles.empty());
    } catch (const util::ConfigError&) {
      // expected for most prefixes
    }
  }
}

TEST(ScenarioFuzz, SingleByteMutationsNeverCrash) {
  const std::string text = scenario::paper().canonical_text();
  std::uint64_t state = 0x9e3779b97f4a7c15ull;  // fixed seed, xorshift64*
  auto next = [&state] {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
  };
  for (int round = 0; round < 512; ++round) {
    std::string mutated = text;
    const std::size_t pos = next() % mutated.size();
    mutated[pos] = static_cast<char>(next() % 256);
    try {
      (void)scenario::parse(mutated, "mutated.scn");
    } catch (const util::ConfigError&) {
      // rejection is fine; crashing or UB is not (ASan/UBSan CI enforces)
    }
  }
}

}  // namespace
}  // namespace vgrid
