// Typed conformance suite: behaviors every Scheduler implementation must
// share (the XP-style PriorityScheduler and the CFS-style FairScheduler),
// run against both via gtest typed tests.

#include <gtest/gtest.h>

#include "hw/machine.hpp"
#include "os/fair_scheduler.hpp"
#include "os/scheduler.hpp"
#include "sim/simulator.hpp"

namespace vgrid::os {
namespace {

template <typename SchedulerT>
class SchedulerConformance : public ::testing::Test {
 protected:
  sim::Simulator simulator;
  hw::Machine machine{simulator};
  SchedulerT scheduler{machine};

  void run_all() {
    while (!scheduler.all_done() && simulator.pending_events() > 0) {
      simulator.step();
    }
  }

  std::unique_ptr<Program> spin(double instructions) {
    ProgramBuilder builder;
    builder.compute(instructions, hw::mixes::idle_spin());
    return builder.build();
  }
};

using SchedulerTypes = ::testing::Types<PriorityScheduler, FairScheduler>;
TYPED_TEST_SUITE(SchedulerConformance, SchedulerTypes);

TYPED_TEST(SchedulerConformance, CompletesAllThreads) {
  for (int i = 0; i < 5; ++i) {
    this->scheduler.spawn("t" + std::to_string(i),
                          i % 2 ? PriorityClass::kIdle
                                : PriorityClass::kNormal,
                          this->spin(3e8));
  }
  this->run_all();
  EXPECT_TRUE(this->scheduler.all_done());
  for (const auto& thread : this->scheduler.threads()) {
    EXPECT_NEAR(thread->instructions_done(), 3e8, 1.0) << thread->name();
  }
}

TYPED_TEST(SchedulerConformance, WorkConservation) {
  for (int i = 0; i < 4; ++i) {
    this->scheduler.spawn("t" + std::to_string(i), PriorityClass::kNormal,
                          this->spin(5e8));
  }
  this->run_all();
  const auto wall = this->simulator.now();
  sim::SimDuration cpu = 0;
  for (const auto& thread : this->scheduler.threads()) {
    cpu += thread->cpu_time();
  }
  EXPECT_LE(cpu, 2 * wall + 10);                       // capacity bound
  EXPECT_GE(static_cast<double>(cpu),
            0.95 * 2.0 * static_cast<double>(wall));   // and busy
}

TYPED_TEST(SchedulerConformance, BlockingThreadResumes) {
  ProgramBuilder builder;
  builder.compute(1e8, hw::mixes::io_bound());
  builder.disk_read(4 * 1024 * 1024);
  builder.compute(1e8, hw::mixes::io_bound());
  auto& thread = this->scheduler.spawn("io", PriorityClass::kNormal,
                                       builder.build());
  this->run_all();
  EXPECT_TRUE(thread.done());
  EXPECT_EQ(this->machine.disk().completed_ops(), 1u);
}

TYPED_TEST(SchedulerConformance, SleepHasNoCpuCost) {
  ProgramBuilder builder;
  builder.sleep(sim::from_seconds(0.25));
  auto& thread = this->scheduler.spawn("zzz", PriorityClass::kNormal,
                                       builder.build());
  this->run_all();
  EXPECT_NEAR(sim::to_seconds(thread.finish_time()), 0.25, 1e-9);
  EXPECT_EQ(thread.cpu_time(), 0);
}

TYPED_TEST(SchedulerConformance, OnDoneCallbackFires) {
  int fired = 0;
  auto& thread = this->scheduler.spawn("t", PriorityClass::kNormal,
                                       this->spin(1e6));
  thread.set_on_done([&fired](HostThread&) { ++fired; });
  this->run_all();
  EXPECT_EQ(fired, 1);
}

TYPED_TEST(SchedulerConformance, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    sim::Simulator fresh_simulator;
    hw::Machine fresh_machine{fresh_simulator};
    TypeParam fresh_scheduler{fresh_machine};
    std::vector<sim::SimTime> finishes;
    for (int i = 0; i < 4; ++i) {
      ProgramBuilder builder;
      builder.compute(2e8 + i * 7e7, hw::mixes::sevenzip());
      auto& thread = fresh_scheduler.spawn("t" + std::to_string(i),
                                           i % 2 ? PriorityClass::kIdle
                                                 : PriorityClass::kNormal,
                                           builder.build());
      thread.set_on_done([&finishes](HostThread& t) {
        finishes.push_back(t.finish_time());
      });
    }
    while (!fresh_scheduler.all_done() &&
           fresh_simulator.pending_events() > 0) {
      fresh_simulator.step();
    }
    return finishes;
  };
  EXPECT_EQ(run_once(), run_once());
}

TYPED_TEST(SchedulerConformance, VmOwnedThreadExemptFromInterruptTax) {
  this->machine.set_service_demand(0.5);
  auto& vm_thread = this->scheduler.spawn(
      "vcpu", PriorityClass::kNormal, this->spin(1e9), /*vm_owned=*/true);
  this->run_all();
  // Alone on the machine: its wall time must match the untaxed rate.
  const double expected =
      1e9 / this->machine.chip().native_ips(
                hw::mixes::idle_spin().normalized());
  EXPECT_NEAR(sim::to_seconds(vm_thread.finish_time()), expected,
              expected * 0.02);
}

}  // namespace
}  // namespace vgrid::os
