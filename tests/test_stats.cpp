// Unit tests for vgrid::stats — descriptive stats, streaming accumulator,
// histogram, regression and Student-t critical values.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/accumulator.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "stats/regression.hpp"
#include "stats/student_t.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace vgrid::stats {
namespace {

// ---- descriptive ------------------------------------------------------------

TEST(Descriptive, MeanOfKnownSample) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Descriptive, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Descriptive, SampleStddevKnownValue) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  // population sd = 2; sample sd = sqrt(32/7).
  EXPECT_NEAR(sample_stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, StddevOfSingletonIsZero) {
  const std::vector<double> v{5.0};
  EXPECT_DOUBLE_EQ(sample_stddev(v), 0.0);
}

TEST(Descriptive, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 3, 2}), 2.5);
}

TEST(Descriptive, QuantileSortedInterpolates) {
  const std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 10.0);
}

TEST(Descriptive, GeometricMean) {
  const std::vector<double> v{1, 10, 100};
  EXPECT_NEAR(geometric_mean(v), 10.0, 1e-9);
}

TEST(Descriptive, GeometricMeanSkipsNonPositive) {
  const std::vector<double> v{-5, 0, 4, 9};
  EXPECT_NEAR(geometric_mean(v), 6.0, 1e-9);
}

TEST(Descriptive, SummarizeFullFields) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_GT(s.ci95_half_width, 0.0);
  EXPECT_LT(s.ci95_lo(), s.mean);
  EXPECT_GT(s.ci95_hi(), s.mean);
}

TEST(Descriptive, SummarizeEmptyIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Descriptive, Ci95CoversTrueMeanUsually) {
  // Repeated-sampling property check for the paper's 50-rep methodology.
  util::Xoshiro256 rng(5);
  int covered = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> sample(50);
    for (auto& v : sample) v = rng.normal(100.0, 15.0);
    const Summary s = summarize(sample);
    if (s.ci95_lo() <= 100.0 && 100.0 <= s.ci95_hi()) ++covered;
  }
  // Expect ~95% coverage; allow generous slack.
  EXPECT_GE(covered, static_cast<int>(trials * 0.88));
}

TEST(Descriptive, TukeyFilterRemovesOutliers) {
  std::vector<double> v{10, 11, 9, 10, 12, 10, 11, 1000};
  const auto filtered = tukey_filter(v);
  EXPECT_EQ(filtered.size(), 7u);
  for (const double x : filtered) EXPECT_LT(x, 100.0);
}

TEST(Descriptive, TukeyFilterKeepsSmallSamples) {
  const std::vector<double> v{1, 1000, 2};
  EXPECT_EQ(tukey_filter(v).size(), 3u);
}

// ---- Student t ---------------------------------------------------------------

TEST(StudentT, TableValues) {
  EXPECT_NEAR(t_critical(1, 0.95), 12.706, 1e-3);
  EXPECT_NEAR(t_critical(10, 0.95), 2.228, 1e-3);
  EXPECT_NEAR(t_critical(30, 0.99), 2.750, 1e-3);
  EXPECT_NEAR(t_critical(30, 0.90), 1.697, 1e-3);
}

TEST(StudentT, LargeDofApproachesNormal) {
  EXPECT_NEAR(t_critical(100, 0.95), 1.984, 0.01);
  EXPECT_NEAR(t_critical(100000, 0.95), 1.96, 0.01);
}

TEST(StudentT, ZCritical) {
  EXPECT_NEAR(z_critical(0.95), 1.95996, 1e-3);
  EXPECT_NEAR(z_critical(0.99), 2.5758, 1e-3);
}

TEST(StudentT, DofClampedToOne) {
  EXPECT_NEAR(t_critical(0, 0.95), 12.706, 1e-3);
}

// ---- accumulator ---------------------------------------------------------------

TEST(Accumulator, MatchesBatchStatistics) {
  util::Xoshiro256 rng(77);
  std::vector<double> sample(1000);
  Accumulator acc;
  for (auto& v : sample) {
    v = rng.uniform(0.0, 100.0);
    acc.add(v);
  }
  EXPECT_EQ(acc.count(), 1000u);
  EXPECT_NEAR(acc.mean(), mean(sample), 1e-9);
  EXPECT_NEAR(acc.stddev(), sample_stddev(sample), 1e-9);
}

TEST(Accumulator, MinMaxSum) {
  Accumulator acc;
  acc.add(3);
  acc.add(-1);
  acc.add(7);
  EXPECT_DOUBLE_EQ(acc.min(), -1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 7.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 9.0);
}

TEST(Accumulator, VarianceNeedsTwoSamples) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, MergeEqualsConcatenation) {
  util::Xoshiro256 rng(78);
  Accumulator a, b, whole;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal(5.0, 2.0);
    (i < 200 ? a : b).add(v);
    whole.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
}

TEST(Accumulator, ResetClears) {
  Accumulator acc;
  acc.add(1.0);
  acc.reset();
  EXPECT_EQ(acc.count(), 0u);
}

// ---- histogram -----------------------------------------------------------------

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(-1.0);  // underflow
  h.add(10.0);  // overflow (hi is exclusive)
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Histogram, RejectsBadConfig) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), util::ConfigError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), util::ConfigError);
}

TEST(Histogram, AsciiRenders) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string out = h.ascii(10);
  EXPECT_NE(out.find('#'), std::string::npos);
}

// ---- regression -----------------------------------------------------------------

TEST(Regression, ExactLine) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{3, 5, 7, 9};  // y = 2x + 1
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.at(10.0), 21.0, 1e-12);
}

TEST(Regression, NoisyLineRecovered) {
  util::Xoshiro256 rng(123);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 100);
    xs.push_back(x);
    ys.push_back(3.0 * x - 7.0 + rng.normal(0.0, 1.0));
  }
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 0.02);
  EXPECT_NEAR(fit.intercept, -7.0, 1.0);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(Regression, DegenerateInputsGiveZeroFit) {
  EXPECT_DOUBLE_EQ(fit_line({}, {}).slope, 0.0);
  const std::vector<double> xs{1, 1, 1};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_DOUBLE_EQ(fit_line(xs, ys).slope, 0.0);  // constant x
}

}  // namespace
}  // namespace vgrid::stats
