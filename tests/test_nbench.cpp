// Tests for the NBench/ByteMark kernel suite: determinism, sanity of each
// algorithm's result, and the composite-index aggregation.

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "workloads/nbench/kernels.hpp"
#include "workloads/nbench/suite.hpp"

namespace vgrid::workloads::nbench {
namespace {

using Runner = KernelResult (*)(std::uint64_t, std::uint64_t);

struct NamedKernel {
  const char* name;
  Runner runner;
};

const NamedKernel kKernels[] = {
    {"numeric_sort", run_numeric_sort}, {"string_sort", run_string_sort},
    {"bitfield", run_bitfield},         {"assignment", run_assignment},
    {"idea", run_idea},                 {"huffman", run_huffman},
    {"fourier", run_fourier},           {"neural", run_neural},
    {"lu_decomp", run_lu_decomp},
};

class KernelParam : public ::testing::TestWithParam<NamedKernel> {};

TEST_P(KernelParam, RunsRequestedIterations) {
  const KernelResult result = GetParam().runner(2, 11);
  EXPECT_EQ(result.iterations, 2u);
  EXPECT_GE(result.elapsed_seconds, 0.0);
}

TEST_P(KernelParam, DeterministicForSameSeed) {
  const KernelResult a = GetParam().runner(2, 123);
  const KernelResult b = GetParam().runner(2, 123);
  EXPECT_EQ(a.checksum, b.checksum) << GetParam().name;
}

TEST_P(KernelParam, ChecksumNonTrivial) {
  const KernelResult result = GetParam().runner(1, 5);
  EXPECT_NE(result.checksum, 0u) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelParam,
                         ::testing::ValuesIn(kKernels),
                         [](const auto& param_info) {
                           return std::string(param_info.param.name);
                         });

TEST(Kernels, SeedChangesRandomizedChecksums) {
  // Kernels operating on random data must differ across seeds (fourier is
  // deterministic by construction and excluded).
  for (const auto& kernel : kKernels) {
    if (std::string(kernel.name) == "fourier") continue;
    const KernelResult a = kernel.runner(1, 1);
    const KernelResult b = kernel.runner(1, 2);
    EXPECT_NE(a.checksum, b.checksum) << kernel.name;
  }
}

TEST(Suite, RunsAllNineKernels) {
  SuiteConfig config;
  config.iterations = 1;
  const SuiteResult suite = run_suite(config);
  EXPECT_EQ(suite.kernels.size(), 9u);
}

TEST(Suite, IndexesArePositiveGeoMeans) {
  SuiteConfig config;
  config.iterations = 1;
  const SuiteResult suite = run_suite(config);
  EXPECT_GT(suite.mem_index, 0.0);
  EXPECT_GT(suite.int_index, 0.0);
  EXPECT_GT(suite.fp_index, 0.0);
  EXPECT_DOUBLE_EQ(suite.index_value(Index::kMem), suite.mem_index);
}

TEST(Suite, KernelsGroupedThreePerIndex) {
  SuiteConfig config;
  config.iterations = 1;
  const SuiteResult suite = run_suite(config);
  int mem = 0, integer = 0, fp = 0;
  for (const auto& kernel : suite.kernels) {
    switch (kernel.index) {
      case Index::kMem: ++mem; break;
      case Index::kInt: ++integer; break;
      case Index::kFp: ++fp; break;
    }
  }
  EXPECT_EQ(mem, 3);
  EXPECT_EQ(integer, 3);
  EXPECT_EQ(fp, 3);
}

TEST(IndexWorkload, NamesAndPrograms) {
  const NBenchIndexWorkload mem(Index::kMem);
  EXPECT_EQ(mem.name(), "nbench-MEM");
  auto program = mem.make_program();
  const os::Step step = program->next();
  const auto* compute = std::get_if<os::ComputeStep>(&step);
  ASSERT_NE(compute, nullptr);
  EXPECT_GT(compute->mix.memory, 0.5);  // MEM index is memory-bound
}

TEST(IndexWorkload, FpProgramIsFpBound) {
  const NBenchIndexWorkload fp(Index::kFp);
  auto program = fp.make_program();
  const os::Step step = program->next();
  const auto* compute = std::get_if<os::ComputeStep>(&step);
  ASSERT_NE(compute, nullptr);
  EXPECT_GT(compute->mix.user_fp, 0.5);
}

TEST(IndexWorkload, RejectsNonPositiveInstructions) {
  EXPECT_THROW(NBenchIndexWorkload(Index::kInt, 0.0), util::ConfigError);
}

}  // namespace
}  // namespace vgrid::workloads::nbench
