// Tests for the external UDP time service (the paper's guest-timing
// technique) — real sockets over loopback.

#include <gtest/gtest.h>

#include <thread>

#include "timesvc/time_client.hpp"
#include "timesvc/time_server.hpp"
#include "util/clock.hpp"

namespace vgrid::timesvc {
namespace {

TEST(TimeServer, BindsEphemeralPort) {
  TimeServer server;
  EXPECT_GT(server.port(), 0);
}

TEST(TimeService, AnswersQueries) {
  TimeServer server;
  TimeClient client(server.port());
  const std::int64_t t = client.server_time_ns();
  EXPECT_GT(t, 0);
  EXPECT_GE(server.requests_served(), 1u);
}

TEST(TimeService, TimeIsMonotonic) {
  TimeServer server;
  TimeClient client(server.port());
  std::int64_t previous = client.server_time_ns();
  for (int i = 0; i < 20; ++i) {
    const std::int64_t now = client.server_time_ns();
    EXPECT_GE(now, previous);
    previous = now;
  }
}

TEST(TimeService, RttIsMeasuredAndSmallOnLoopback) {
  TimeServer server;
  TimeClient client(server.port());
  (void)client.server_time_ns();
  EXPECT_GT(client.last_rtt_ns(), 0);
  EXPECT_LT(client.last_rtt_ns(), 100'000'000);  // < 100 ms
}

TEST(TimeService, ExternalStopwatchMeasuresSleep) {
  TimeServer server;
  TimeClient client(server.port());
  ExternalStopwatch stopwatch(client);
  stopwatch.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const std::int64_t elapsed = stopwatch.stop();
  EXPECT_GE(elapsed, 25'000'000);
  EXPECT_LT(elapsed, 2'000'000'000);
}

TEST(TimeService, MultipleClientsShareOneServer) {
  TimeServer server;
  TimeClient a(server.port());
  TimeClient b(server.port());
  EXPECT_GT(a.server_time_ns(), 0);
  EXPECT_GT(b.server_time_ns(), 0);
  EXPECT_GE(server.requests_served(), 2u);
}

TEST(TimeService, StopIsIdempotent) {
  TimeServer server;
  server.stop();
  server.stop();
}

TEST(TimeService, ServerTimeTracksLocalMonotonicClock) {
  // Same host: the server's clock and ours are the same physical clock,
  // so the reading must land between our before/after samples.
  TimeServer server;
  TimeClient client(server.port());
  const std::int64_t before = util::monotonic_time_ns();
  const std::int64_t reading = client.server_time_ns();
  const std::int64_t after = util::monotonic_time_ns();
  EXPECT_GE(reading, before);
  EXPECT_LE(reading, after);
}

}  // namespace
}  // namespace vgrid::timesvc
